#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

namespace bingo
{

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
percent(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

void
StatSet::add(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

} // namespace bingo
