/**
 * @file
 * Spatial footprint: a bit vector over the blocks of one region.
 *
 * A footprint records which cache blocks of a spatial region were touched
 * during one page generation. Regions hold at most 64 blocks (4 KB at
 * 64 B blocks), so one machine word suffices; the logical width is kept
 * so footprints of different region sizes never compare equal by
 * accident.
 */

#ifndef BINGO_COMMON_FOOTPRINT_HPP
#define BINGO_COMMON_FOOTPRINT_HPP

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bingo
{

/** Bit vector over the blocks of a spatial region. */
class Footprint
{
  public:
    /** Construct an empty footprint of `width` blocks (<= 64). */
    explicit Footprint(unsigned width = kBlocksPerRegion);

    /** Number of blocks this footprint covers. */
    unsigned width() const { return width_; }

    /** Mark block `offset` as touched. */
    void set(unsigned offset);

    /** Clear block `offset`. */
    void clear(unsigned offset);

    /** Whether block `offset` is marked. */
    bool test(unsigned offset) const;

    /** Number of marked blocks. */
    unsigned count() const { return std::popcount(bits_); }

    /** True when no block is marked. */
    bool empty() const { return bits_ == 0; }

    /** Remove all marks. */
    void reset() { bits_ = 0; }

    /** Raw bits, LSB = block 0. */
    std::uint64_t raw() const { return bits_; }

    /** Build from raw bits (masked to the footprint width). */
    static Footprint fromRaw(std::uint64_t bits,
                             unsigned width = kBlocksPerRegion);

    /** Offsets of all marked blocks in ascending order. */
    std::vector<unsigned> offsets() const;

    /** Bitwise AND: blocks present in both footprints. */
    Footprint operator&(const Footprint &other) const;

    /** Bitwise OR: blocks present in either footprint. */
    Footprint operator|(const Footprint &other) const;

    bool operator==(const Footprint &other) const = default;

    /**
     * Number of marked blocks also marked in `actual` — the "useful"
     * part of a predicted footprint.
     */
    unsigned overlap(const Footprint &actual) const;

    /** Render as a 0/1 string, block 0 first (debugging aid). */
    std::string toString() const;

    /*
     * Batch operations over candidate sets, as packed raw words
     * (LSB = block 0, one word per footprint, all of width `width`).
     * These run through the SIMD dispatch layer and are bit-identical
     * to folding the scalar operators.
     */

    /** Union of `count` raw footprints (empty when count is 0). */
    static Footprint unionOf(const std::uint64_t *raws,
                             std::size_t count,
                             unsigned width = kBlocksPerRegion);

    /** Intersection of `count` raw footprints (full when count is 0). */
    static Footprint intersectOf(const std::uint64_t *raws,
                                 std::size_t count,
                                 unsigned width = kBlocksPerRegion);

    /** Total marked blocks across `count` raw footprints. */
    static std::uint64_t totalCount(const std::uint64_t *raws,
                                    std::size_t count);

  private:
    std::uint64_t bits_ = 0;
    unsigned width_;
};

/**
 * Footprint vote accumulator: given several matching history entries,
 * counts per-block popularity and extracts the blocks present in at
 * least `threshold` (fraction) of the entries — the paper's 20 % rule.
 */
class FootprintVote
{
  public:
    explicit FootprintVote(unsigned width = kBlocksPerRegion);

    /** Add one matching entry's footprint to the tally. */
    void add(const Footprint &fp);

    /** Number of footprints added so far. */
    unsigned voters() const { return voters_; }

    /**
     * Blocks present in at least ceil(threshold * voters) entries.
     * A threshold of 0 returns the union of all votes.
     */
    Footprint resolve(double threshold) const;

  private:
    std::vector<std::uint16_t> counts_;
    unsigned voters_ = 0;
    unsigned width_;
};

} // namespace bingo

#endif // BINGO_COMMON_FOOTPRINT_HPP
