/**
 * @file
 * System configuration mirroring the paper's Table I, plus the knobs
 * the evaluation sweeps (prefetcher sizing, aggressiveness).
 *
 * All latencies are in core cycles at the 4 GHz nominal frequency.
 */

#ifndef BINGO_COMMON_CONFIG_HPP
#define BINGO_COMMON_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bingo
{

/** Core (Table I: 4-wide OoO, 256-entry ROB, 64-entry LSQ). */
struct CoreConfig
{
    unsigned width = 4;          ///< Dispatch/retire width.
    unsigned rob_entries = 256;
    unsigned lsq_entries = 64;
    unsigned alu_latency = 1;    ///< Completion latency of non-mem ops.
};

/** Cache replacement policy. */
enum class ReplacementKind : std::uint8_t
{
    Lru,     ///< True LRU (the baseline the paper assumes).
    Srrip,   ///< 2-bit static RRIP (scan-resistant).
    Random,  ///< Pseudo-random victim (cheap-hardware reference).
};

/** One cache level. */
struct CacheConfig
{
    std::uint64_t size_bytes = 64 * 1024;
    unsigned ways = 8;
    unsigned hit_latency = 4;    ///< Cycles from access to data.
    unsigned mshr_entries = 8;
    unsigned prefetch_queue = 0; ///< Prefetches buffered while MSHRs
                                 ///< are busy (0 = drop immediately).
    ReplacementKind replacement = ReplacementKind::Lru;

    std::uint64_t numSets() const
    {
        return size_bytes / (kBlockSize * ways);
    }
    std::uint64_t numBlocks() const { return size_bytes / kBlockSize; }
};

/**
 * DRAM (Table I: 60 ns zero-load latency, 37.5 GB/s peak bandwidth).
 *
 * At 4 GHz, 60 ns = 240 cycles. Peak bandwidth 37.5 GB/s over two
 * channels means each 64 B transfer occupies a channel data bus for
 * 64 B / 18.75 GB/s = 3.41 ns = ~14 cycles.
 */
struct DramConfig
{
    unsigned channels = 2;
    unsigned banks_per_channel = 32;  ///< 2 ranks x 16 banks (DDR4).
    std::uint64_t row_size_bytes = 4 * 1024;
    unsigned controller_latency = 40;  ///< Fixed on-chip path, cycles.
    unsigned t_cas = 56;               ///< Column access, cycles.
    unsigned t_rcd = 56;               ///< Row activate, cycles.
    unsigned t_rp = 56;                ///< Precharge, cycles.
    unsigned data_transfer = 14;       ///< Bus occupancy per 64 B.
    unsigned read_queue_entries = 48;  ///< Per channel.

    /**
     * Zero-load read latency to an open row's channel with a row miss:
     * controller + RP + RCD + CAS + transfer. The defaults give
     * 40+56+56+56+14 = 222 cycles (~55.5 ns) for a row-empty access and
     * 40+56+14 = 110 cycles for a row hit; the mix lands near the
     * paper's 60 ns average zero-load latency.
     */
    unsigned zeroLoadRowMiss() const
    {
        return controller_latency + t_rp + t_rcd + t_cas + data_transfer;
    }
};

/** Which prefetcher to attach at the LLC. */
enum class PrefetcherKind
{
    None,
    NextLine,
    Stride,
    Bop,
    Spp,
    Vldp,
    Ampm,
    Sms,
    Bingo,
    BingoMulti,   ///< Naive multi-table TAGE-like variant (Fig. 3/4).
    EventStudy,   ///< Non-prefetching observer (Figs. 2-4).
    // Values below were appended after EventStudy; journal records and
    // the dist wire protocol serialize the enum as an unsigned, so new
    // kinds must only ever be appended here.
    Isb,          ///< ISB/SISB-style temporal stream prefetcher.
    Domino,       ///< Domino-style pair/sequence correlation.
    Hybrid,       ///< Multi-engine arbiter with per-PC routing.
};

/** Human-readable prefetcher name as used in the paper's figures. */
std::string prefetcherName(PrefetcherKind kind);

/** Per-prefetcher sizing/aggressiveness knobs (paper Section V-B). */
struct PrefetcherConfig
{
    PrefetcherKind kind = PrefetcherKind::None;

    // --- Spatial-region geometry shared by PPH prefetchers.
    unsigned region_blocks = kBlocksPerRegion;

    // --- Bingo / SMS.
    std::size_t pht_entries = 16 * 1024;
    unsigned pht_ways = 16;
    std::size_t accumulation_entries = 128;
    std::size_t filter_entries = 64;
    double vote_threshold = 0.20;

    // --- BOP.
    std::size_t bop_rr_entries = 256;
    unsigned bop_score_max = 31;
    unsigned bop_round_max = 100;
    unsigned bop_bad_score = 1;
    unsigned bop_degree = 1;      ///< 32 in the Fig. 10 aggressive mode.

    // --- SPP.
    std::size_t spp_signature_entries = 256;
    std::size_t spp_pattern_entries = 512;
    std::size_t spp_filter_entries = 1024;
    double spp_confidence_threshold = 0.25;  ///< 0.01 in aggressive mode.
    unsigned spp_max_depth = 8;

    // --- VLDP.
    std::size_t vldp_dhb_entries = 16;
    std::size_t vldp_opt_entries = 64;
    std::size_t vldp_dpt_entries = 64;
    unsigned vldp_degree = 4;     ///< 32 in the Fig. 10 aggressive mode.

    // --- AMPM.
    std::size_t ampm_map_entries = 4096;  ///< Covers the 8 MB LLC.
    unsigned ampm_degree = 4;

    // --- Stride.
    std::size_t stride_table_entries = 256;
    unsigned stride_degree = 4;

    // --- BingoMulti / EventStudy: number of event tables (1..5),
    //     longest first: PC+Address, PC+Offset, PC, Address, Offset.
    unsigned num_events = 2;

    // --- ISB (temporal): per-PC training unit plus the two mapping
    //     caches (physical->structural and structural->physical).
    std::size_t isb_training_entries = 256;
    std::size_t isb_mapping_entries = 262144;  ///< Each of PS and SP.
    unsigned isb_degree = 8;

    // --- Domino (temporal): last-two-miss pair table plus a
    //     single-miss fallback table (a quarter of the pair entries).
    std::size_t domino_table_entries = 262144;
    unsigned domino_degree = 8;

    // --- Triangel-style metadata filter shared by the temporal
    //     engines: a correlation must be sampled `threshold` times
    //     before it may claim a mapping/correlation-table entry, so
    //     one-shot noise cannot evict established metadata.
    std::size_t temporal_filter_entries = 131072;
    unsigned temporal_filter_bits = 2;
    unsigned temporal_filter_threshold = 1;

    // --- Hybrid arbiter: hosted engines (order fixes the tie-break
    //     and the telemetry attribution), per-PC accuracy table,
    //     issued-block verdict tracker, and the issue budget shared
    //     across engines per trigger access.
    std::vector<PrefetcherKind> hybrid_engines{
        PrefetcherKind::Bingo, PrefetcherKind::Isb,
        PrefetcherKind::Domino};
    std::size_t hybrid_pc_entries = 1024;
    // Sized like the LLC tag array: the verdict state conceptually
    // lives in the cache tags (a prefetched bit plus proposer mask per
    // line), so a tracked block survives until its demand or eviction
    // actually happens. An undersized tracker churns out most verdicts
    // and the confidence counters drift on the biased remainder.
    std::size_t hybrid_tracker_entries = 131072;
    unsigned hybrid_counter_bits = 4;
    unsigned hybrid_issue_budget = 32;

    /** Metadata storage of this prefetcher in bytes (for Fig. 9). */
    std::uint64_t storageBytes() const;
};

/**
 * Deterministic fault-injection plan (src/chaos). Disabled by default;
 * populated from `BINGO_CHAOS=seed:rate[:sites]` by applyEnvChaos() or
 * set directly by chaos-aware benches. The plan participates in job
 * fingerprints, so chaos runs journal separately from clean runs; with
 * `enabled == false` the serialized config is byte-identical to
 * pre-chaos builds.
 */
struct ChaosConfig
{
    bool enabled = false;
    std::uint64_t seed = 0;      ///< Chaos stream seed (independent of
                                 ///< SystemConfig::seed).
    double rate = 0.0;           ///< Per-opportunity fault probability.
    unsigned site_mask = 0x1F;   ///< Bit per ChaosSite (default: all).
};

/** Whole-system configuration (Table I defaults). */
struct SystemConfig
{
    unsigned num_cores = 4;
    double frequency_ghz = 4.0;
    CoreConfig core;
    CacheConfig l1d{64 * 1024, 8, 4, 8};
    CacheConfig llc{8 * 1024 * 1024, 16, 15, 128, 256};
    DramConfig dram;
    PrefetcherConfig prefetcher;
    ChaosConfig chaos;
    std::uint64_t seed = 42;

    /** Single-core convenience variant used by unit tests. */
    static SystemConfig singleCore();

    /**
     * Reject configurations the simulator cannot run correctly:
     * power-of-two cache/table geometry, nonzero ways/MSHRs/queues/
     * cores, prefetch degrees and thresholds within bounds. Throws
     * std::invalid_argument naming the offending field. Called by the
     * experiment runner before every simulation, replacing the
     * asserts-on-use scattered through the components.
     */
    void validate() const;
};

} // namespace bingo

#endif // BINGO_COMMON_CONFIG_HPP
