#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

namespace bingo
{

DramController::DramController(const DramConfig &config)
    : config_(config)
{
    assert(config_.channels > 0);
    assert(config_.banks_per_channel > 0);
    channels_.resize(config_.channels);
    for (Channel &ch : channels_)
        ch.banks.resize(config_.banks_per_channel);
}

unsigned
DramController::channelOf(Addr block_addr) const
{
    // Consecutive blocks alternate channels: streaming traffic uses the
    // full aggregate bandwidth.
    return static_cast<unsigned>(blockNumber(block_addr) %
                                 config_.channels);
}

unsigned
DramController::bankOf(Addr block_addr) const
{
    return static_cast<unsigned>(rowOf(block_addr) %
                                 config_.banks_per_channel);
}

std::uint64_t
DramController::rowOf(Addr block_addr) const
{
    // A row holds row_size_bytes of the blocks mapped to one channel.
    const std::uint64_t blocks_per_row =
        config_.row_size_bytes / kBlockSize;
    return (blockNumber(block_addr) / config_.channels) / blocks_per_row;
}

Cycle
DramController::service(Addr block_addr, Cycle now)
{
    Channel &ch = channels_[channelOf(block_addr)];
    Bank &bank = ch.banks[bankOf(block_addr)];
    const std::uint64_t row = rowOf(block_addr);

    const Cycle start = std::max(now + config_.controller_latency,
                                 bank.ready);
    stats_.queue_delay_cycles +=
        start - (now + config_.controller_latency);

    // Latency (when the data is ready) and occupancy (when the bank can
    // take the next command) differ: successive row hits pipeline at
    // the column-to-column rate, not the full CAS latency.
    Cycle access_latency;
    Cycle occupancy;
    if (bank.row_open && bank.open_row == row) {
        ++stats_.row_hits;
        access_latency = config_.t_cas;
        occupancy = config_.data_transfer;
    } else if (!bank.row_open) {
        ++stats_.row_misses;
        access_latency = config_.t_rcd + config_.t_cas;
        occupancy = config_.t_rcd + config_.data_transfer;
    } else {
        ++stats_.row_conflicts;
        access_latency = config_.t_rp + config_.t_rcd + config_.t_cas;
        occupancy = config_.t_rp + config_.t_rcd + config_.data_transfer;
    }
    bank.row_open = true;
    bank.open_row = row;
    bank.ready = start + occupancy;

    const Cycle data_start = std::max(start + access_latency,
                                      ch.bus_free);
    const Cycle data_done = data_start + config_.data_transfer;
    ch.bus_free = data_done;
    stats_.bus_busy_cycles += config_.data_transfer;

    return data_done;
}

Cycle
DramController::read(Addr block_addr, Cycle now)
{
    ++stats_.reads;
    return service(block_addr, now);
}

void
DramController::write(Addr block_addr, Cycle now)
{
    ++stats_.writes;
    service(block_addr, now);
}

void
DramController::reset()
{
    for (Channel &ch : channels_) {
        ch.bus_free = 0;
        for (Bank &bank : ch.banks)
            bank = Bank{};
    }
    stats_ = DramStats{};
}

} // namespace bingo
