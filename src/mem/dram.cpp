#include "mem/dram.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/sim_check.hpp"
#include "telemetry/registry.hpp"

namespace bingo
{

DramController::DramController(const DramConfig &config)
    : config_(config)
{
    if (config_.channels == 0)
        throw std::invalid_argument("DramConfig.channels must be nonzero");
    if (config_.banks_per_channel == 0)
        throw std::invalid_argument(
            "DramConfig.banks_per_channel must be nonzero");
    channels_.resize(config_.channels);
    for (Channel &ch : channels_)
        ch.banks.resize(config_.banks_per_channel);
}

unsigned
DramController::channelOf(Addr block_addr) const
{
    // Consecutive blocks alternate channels: streaming traffic uses the
    // full aggregate bandwidth.
    return static_cast<unsigned>(blockNumber(block_addr) %
                                 config_.channels);
}

unsigned
DramController::bankOf(Addr block_addr) const
{
    return static_cast<unsigned>(rowOf(block_addr) %
                                 config_.banks_per_channel);
}

std::uint64_t
DramController::rowOf(Addr block_addr) const
{
    // A row holds row_size_bytes of the blocks mapped to one channel.
    const std::uint64_t blocks_per_row =
        config_.row_size_bytes / kBlockSize;
    return (blockNumber(block_addr) / config_.channels) / blocks_per_row;
}

Cycle
DramController::service(Addr block_addr, Cycle now)
{
    Channel &ch = channels_[channelOf(block_addr)];
    Bank &bank = ch.banks[bankOf(block_addr)];
    const std::uint64_t row = rowOf(block_addr);

    const Cycle start = std::max(now + config_.controller_latency,
                                 bank.ready);
    stats_.queue_delay_cycles +=
        start - (now + config_.controller_latency);

    // Latency (when the data is ready) and occupancy (when the bank can
    // take the next command) differ: successive row hits pipeline at
    // the column-to-column rate, not the full CAS latency.
    Cycle access_latency;
    Cycle occupancy;
    if (bank.row_open && bank.open_row == row) {
        ++stats_.row_hits;
        access_latency = config_.t_cas;
        occupancy = config_.data_transfer;
    } else if (!bank.row_open) {
        ++stats_.row_misses;
        access_latency = config_.t_rcd + config_.t_cas;
        occupancy = config_.t_rcd + config_.data_transfer;
    } else {
        ++stats_.row_conflicts;
        access_latency = config_.t_rp + config_.t_rcd + config_.t_cas;
        occupancy = config_.t_rp + config_.t_rcd + config_.data_transfer;
    }
    bank.row_open = true;
    bank.open_row = row;
    bank.ready = start + occupancy;

    const Cycle data_start = std::max(start + access_latency,
                                      ch.bus_free);
    const Cycle data_done = data_start + config_.data_transfer;
    ch.bus_free = data_done;
    stats_.bus_busy_cycles += config_.data_transfer;

    // Track the drain horizon incrementally so idle()/busyUntil()
    // never have to scan channels and banks.
    busy_until_ = std::max(busy_until_, std::max(bank.ready, data_done));

    return data_done;
}

Cycle
DramController::read(Addr block_addr, Cycle now)
{
    ++stats_.reads;
    return service(block_addr, now);
}

void
DramController::write(Addr block_addr, Cycle now)
{
    ++stats_.writes;
    service(block_addr, now);
}

void
DramController::checkInvariants(Cycle now) const
{
    if (channels_.size() != config_.channels)
        throw SimError("DRAM", now,
                       "channel count " +
                           std::to_string(channels_.size()) +
                           " does not match config " +
                           std::to_string(config_.channels));
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        if (channels_[c].banks.size() != config_.banks_per_channel)
            throw SimError("DRAM", now,
                           "channel " + std::to_string(c) + " has " +
                               std::to_string(
                                   channels_[c].banks.size()) +
                               " banks, config says " +
                               std::to_string(
                                   config_.banks_per_channel));
    }
    // Every serviced request is classified exactly once and occupies
    // the bus for exactly one transfer; the counters must agree.
    const std::uint64_t requests = stats_.reads + stats_.writes;
    const std::uint64_t classified =
        stats_.row_hits + stats_.row_misses + stats_.row_conflicts;
    if (requests != classified)
        throw SimError("DRAM", now,
                       std::to_string(requests) +
                           " requests serviced but " +
                           std::to_string(classified) +
                           " row-buffer outcomes recorded");
    if (stats_.bus_busy_cycles != requests * config_.data_transfer)
        throw SimError("DRAM", now,
                       "bus occupancy " +
                           std::to_string(stats_.bus_busy_cycles) +
                           " cycles does not equal requests x "
                           "transfer time " +
                           std::to_string(requests *
                                          config_.data_transfer));
    // The cached drain horizon must dominate every bank/bus timer, or
    // idle() would short-circuit while work is still in flight.
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const Channel &ch = channels_[c];
        if (ch.bus_free > busy_until_)
            throw SimError("DRAM", now,
                           "channel " + std::to_string(c) +
                               " bus timer " +
                               std::to_string(ch.bus_free) +
                               " exceeds cached busyUntil " +
                               std::to_string(busy_until_));
        for (const Bank &bank : ch.banks) {
            if (bank.ready > busy_until_)
                throw SimError("DRAM", now,
                               "bank timer " +
                                   std::to_string(bank.ready) +
                                   " exceeds cached busyUntil " +
                                   std::to_string(busy_until_));
        }
    }
}

void
DramController::reset()
{
    for (Channel &ch : channels_) {
        ch.bus_free = 0;
        for (Bank &bank : ch.banks)
            bank = Bank{};
    }
    stats_ = DramStats{};
    busy_until_ = 0;
}

void
DramController::registerTelemetry(telemetry::Registry &registry) const
{
    registry.probeGroup(
        "dram.", [this](std::map<std::string, std::uint64_t> &out) {
            out["reads"] = stats_.reads;
            out["writes"] = stats_.writes;
            out["row_hits"] = stats_.row_hits;
            out["row_misses"] = stats_.row_misses;
            out["row_conflicts"] = stats_.row_conflicts;
            out["bus_busy_cycles"] = stats_.bus_busy_cycles;
            out["queue_delay_cycles"] = stats_.queue_delay_cycles;
        });
}

} // namespace bingo
