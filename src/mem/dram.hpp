/**
 * @file
 * Analytic DRAM timing model: channels, banks, row buffers, and a data
 * bus with finite bandwidth.
 *
 * The model is computed-on-arrival rather than cycle-stepped: when a
 * request arrives, its completion time is derived from the target
 * bank's readiness, the row-buffer state, and the channel data bus's
 * next free slot. This captures the two behaviours the paper's
 * evaluation depends on — row-buffer locality (spatial prefetches hit
 * open rows) and the bandwidth wall (overpredicting prefetchers saturate
 * the bus and delay demand traffic) — without a full command scheduler.
 * Scheduling is FCFS per channel with bank-level parallelism.
 */

#ifndef BINGO_MEM_DRAM_HPP
#define BINGO_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace bingo
{

namespace telemetry
{
class Registry;
} // namespace telemetry

/** Statistics exported by the DRAM model. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t row_conflicts = 0;   ///< Row miss that needed precharge.
    std::uint64_t bus_busy_cycles = 0; ///< Across all channels.
    std::uint64_t queue_delay_cycles = 0;

    double
    rowHitRate() const
    {
        const std::uint64_t total = row_hits + row_misses + row_conflicts;
        return total == 0 ? 0.0
                          : static_cast<double>(row_hits) /
                                static_cast<double>(total);
    }
};

/** Banked DRAM with per-channel data buses. */
class DramController
{
  public:
    explicit DramController(const DramConfig &config);

    /**
     * Issue a read for the block at `block_addr` arriving at `now`.
     * @return Absolute cycle at which the data is available on chip.
     */
    Cycle read(Addr block_addr, Cycle now);

    /**
     * Issue a writeback for `block_addr` at `now`. Writes consume bank
     * and bus time (pressuring reads) but nothing waits on them.
     */
    void write(Addr block_addr, Cycle now);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

    /**
     * Latest cycle at which any bank or channel bus is still committed
     * to in-flight work. O(1): maintained as a running bound in
     * service() rather than scanned across channels x banks on every
     * query — the scan the idle short-circuit exists to avoid.
     */
    Cycle busyUntil() const { return busy_until_; }

    /** Whether every bank and bus timer has drained by `now`. */
    bool idle(Cycle now) const { return busy_until_ <= now; }

    /**
     * Earliest future cycle at which this controller must run work of
     * its own — the memory half of the run loop's fast-forward
     * contract. The analytic model computes every completion at
     * service time and schedules it on the global event queue, so
     * there is never self-scheduled work to return to: once the bank
     * and bus timers have drained the answer is kNeverCycle, and while
     * they are still pending the conservative bound busyUntil() keeps
     * a jump from overshooting controller state. Either answer is
     * O(1); a queued command scheduler would return its next command
     * cycle here instead.
     */
    Cycle
    nextWorkCycle(Cycle now) const
    {
        return idle(now) ? kNeverCycle : busy_until_;
    }

    /** Reset timing state and statistics. */
    void reset();

    /**
     * Structural self-check (the BINGO_CHECK layer): channel/bank
     * geometry matches the config and the service counters satisfy
     * their identities (every request classified exactly once, bus
     * occupancy proportional to requests). Throws SimError on the
     * first violation.
     */
    void checkInvariants(Cycle now) const;

    /** Clear the counters but keep bank/bus timing state. */
    void resetStatsOnly() { stats_ = DramStats{}; }

    /** Register this controller's counters as telemetry probes. */
    void registerTelemetry(telemetry::Registry &registry) const;

    /** Channel servicing `block_addr` (blocks interleave channels). */
    unsigned channelOf(Addr block_addr) const;
    /** Bank within the channel (row-interleaved across banks). */
    unsigned bankOf(Addr block_addr) const;
    /** DRAM row holding `block_addr`. */
    std::uint64_t rowOf(Addr block_addr) const;

  private:
    struct Bank
    {
        bool row_open = false;
        std::uint64_t open_row = 0;
        Cycle ready = 0;   ///< When the bank can accept a new command.
    };

    struct Channel
    {
        std::vector<Bank> banks;
        Cycle bus_free = 0;
    };

    /** Common service path for reads and writes. */
    Cycle service(Addr block_addr, Cycle now);

    DramConfig config_;
    std::vector<Channel> channels_;
    DramStats stats_;
    /// Running max over every bank.ready and channel bus_free.
    Cycle busy_until_ = 0;
};

} // namespace bingo

#endif // BINGO_MEM_DRAM_HPP
