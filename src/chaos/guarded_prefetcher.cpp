#include "chaos/guarded_prefetcher.hpp"

#include <cstdio>

#include "common/sim_check.hpp"

namespace bingo::chaos
{

GuardedPrefetcher::GuardedPrefetcher(std::unique_ptr<Prefetcher> inner,
                                     std::string component)
    : Prefetcher(inner->config()), inner_(std::move(inner)),
      component_(std::move(component)), name_(inner_->name())
{
}

void
GuardedPrefetcher::quarantine(Cycle cycle, const std::string &reason)
{
    quarantined_ = true;
    reason_ = reason;
    quarantine_cycle_ = cycle;
    stats_.add("quarantined");
    stats_.set("quarantine_cycle", cycle);
}

void
GuardedPrefetcher::onAccess(const PrefetchAccess &access,
                            std::vector<Addr> &out)
{
    if (quarantined_)
        return;
    const std::size_t before = out.size();
    try {
        if (fault_pending_) {
            fault_pending_ = false;
            throw SimError(component_, access.cycle,
                           "chaos-injected prefetcher fault");
        }
        inner_->onAccess(access, out);
        if (out.size() - before > kMaxCandidatesPerAccess)
            throw SimError(
                component_, access.cycle,
                name_ + " emitted " +
                    std::to_string(out.size() - before) +
                    " candidates in one access (bound " +
                    std::to_string(kMaxCandidatesPerAccess) + ")");
        for (std::size_t i = before; i < out.size(); ++i) {
            if (out[i] >= kMaxCandidateAddr) {
                char buf[32];
                std::snprintf(buf, sizeof buf, "0x%llx",
                              static_cast<unsigned long long>(out[i]));
                throw SimError(component_, access.cycle,
                               name_ +
                                   " emitted out-of-range candidate " +
                                   buf);
            }
        }
    } catch (const std::exception &e) {
        out.resize(before);
        quarantine(access.cycle, e.what());
    } catch (...) {
        out.resize(before);
        quarantine(access.cycle, "unknown exception");
    }
}

void
GuardedPrefetcher::onEviction(Addr block)
{
    if (quarantined_)
        return;
    try {
        inner_->onEviction(block);
    } catch (const std::exception &e) {
        quarantine(0, e.what());
    } catch (...) {
        quarantine(0, "unknown exception");
    }
}

void
GuardedPrefetcher::perturbMetadata(Rng &rng)
{
    if (quarantined_)
        return;
    try {
        inner_->perturbMetadata(rng);
    } catch (const std::exception &e) {
        quarantine(0, e.what());
    } catch (...) {
        quarantine(0, "unknown exception");
    }
}

void
GuardedPrefetcher::registerTelemetry(telemetry::Registry &registry,
                                     const std::string &prefix) const
{
    // The wrapped model keeps its usual keys so clean-run telemetry is
    // unchanged; the guard's verdict counters live one level down.
    inner_->registerTelemetry(registry, prefix);
    Prefetcher::registerTelemetry(registry, prefix + "guard.");
}

} // namespace bingo::chaos
