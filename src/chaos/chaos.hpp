/**
 * @file
 * Seeded, deterministic fault injection for the simulated machine.
 *
 * The chaos layer perturbs a run at five sites — trace records at the
 * reader, DRAM response timing, prefetcher metadata bits, MSHR
 * occupancy, and the prefetcher model itself — on an exact schedule
 * derived from per-site RNG streams. Every draw happens at a fixed
 * *opportunity* (per trace record pulled, per prefetch request, per
 * DRAM fetch, per LLC demand access), never per cycle, so the schedule
 * is bit-identical across thread counts and with cycle skipping on or
 * off: the same `BINGO_CHAOS` spec replays the same faults at the same
 * points of the same run.
 *
 * Spec format: `BINGO_CHAOS=seed:rate[:sites]` where `sites` is a
 * comma list of {trace,dram,meta,mshr,pf} or `all` (the default).
 * Malformed specs throw — a chaos experiment with a silently-dropped
 * plan would masquerade as a clean run.
 */

#ifndef BINGO_CHAOS_CHAOS_HPP
#define BINGO_CHAOS_CHAOS_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/ooo_core.hpp"

namespace bingo::chaos
{

/** Injection sites; bit positions in ChaosConfig::site_mask. */
enum class ChaosSite : unsigned
{
    Trace = 0,       ///< Bit-flip virtual addr/pc of trace records.
    Dram = 1,        ///< Delay or drop-and-retry DRAM responses.
    Metadata = 2,    ///< Flip bits in prefetcher metadata entries.
    Mshr = 3,        ///< Spike MSHR occupancy seen by prefetches.
    Prefetcher = 4,  ///< Inject a fault into the prefetcher model.
    Transport = 5,   ///< Corrupt/stall/sever distributed-sweep frames.
};

/**
 * Number of *simulation* sites — the ones ChaosEngine draws for and
 * that contribute to a job's fingerprint. The transport site lives
 * outside the simulated machine: it perturbs the coordinator/worker
 * byte stream, must never change what any job computes, and so is
 * deliberately excluded from this count, from `all`, and from the
 * chaos identity that applyEnvChaos overlays onto a SystemConfig.
 */
constexpr unsigned kNumChaosSites = 5;

/** Mask of every simulation site (what `all` expands to). */
constexpr unsigned kSimSiteMask = (1u << kNumChaosSites) - 1;

/** site_mask bit for one site. */
constexpr unsigned
siteBit(ChaosSite site)
{
    return 1u << static_cast<unsigned>(site);
}

/**
 * Parse a `seed:rate[:sites]` spec. Throws std::invalid_argument on
 * malformed input (bad numbers, rate outside [0, 1], unknown site).
 */
ChaosConfig parseChaosSpec(const std::string &spec);

/** Render a plan back to its `seed:rate:sites` spec (logs, reports). */
std::string formatChaosSpec(const ChaosConfig &config);

/**
 * The process-wide plan from BINGO_CHAOS (cached after the first
 * call; unset or empty means disabled). Throws on a malformed spec.
 */
const ChaosConfig &chaosFromEnv();

/**
 * Overlay the BINGO_CHAOS plan onto a config that does not already
 * carry one. Benches that set cfg.chaos explicitly keep their plan.
 * The transport bit is stripped before the overlay: transport faults
 * perturb the distributed runtime's byte stream, not the simulated
 * machine, so they must leave job fingerprints — and therefore the
 * journal byte-identity oracle — untouched. A spec naming only the
 * transport site leaves cfg.chaos disabled.
 */
void applyEnvChaos(SystemConfig &cfg);

/**
 * The transport slice of BINGO_CHAOS, consumed by the distributed
 * runtime (src/dist/transport.*) rather than by ChaosEngine. Enabled
 * only when the spec explicitly names the `transport` site; `all`
 * means all *simulation* sites and never turns this on.
 */
struct TransportFaultPlan
{
    bool enabled = false;
    std::uint64_t seed = 0;
    double rate = 0.0;
};

/** Transport fault plan from BINGO_CHAOS (cached; see chaosFromEnv). */
TransportFaultPlan transportChaosFromEnv();

/** What the injector actually did during a run. */
struct ChaosCounters
{
    std::uint64_t trace_corruptions = 0;
    std::uint64_t dram_delays = 0;
    std::uint64_t dram_drops = 0;
    std::uint64_t metadata_flips = 0;
    std::uint64_t mshr_spikes = 0;
    std::uint64_t injected_prefetcher_faults = 0;
};

/**
 * Per-System fault plan: one independent RNG stream per site, all
 * derived from (chaos seed, system seed, site), so enabling one site
 * never perturbs another's schedule and two Systems with the same
 * seeds fault identically regardless of which thread runs them.
 */
class ChaosEngine
{
  public:
    ChaosEngine(const ChaosConfig &config, std::uint64_t system_seed)
        : config_(config)
    {
        const std::uint64_t base =
            hashCombine(config.seed, system_seed);
        for (unsigned s = 0; s < kNumChaosSites; ++s)
            streams_[s].reseed(hashCombine(base, s + 1));
        trace_base_ = hashCombine(base, 0x7ace);
    }

    const ChaosConfig &config() const { return config_; }

    bool
    siteEnabled(ChaosSite site) const
    {
        return (config_.site_mask & siteBit(site)) != 0;
    }

    /** The site's private stream (draw order defines the schedule). */
    Rng &
    stream(ChaosSite site)
    {
        return streams_[static_cast<unsigned>(site)];
    }

    /**
     * One fault opportunity at `site`: a masked-off site never draws
     * (its stream stays untouched), an enabled one always draws —
     * even at rate 0 — so the schedule depends only on the opportunity
     * sequence, not on the rate.
     */
    bool
    fires(ChaosSite site)
    {
        return siteEnabled(site) && stream(site).chance(config_.rate);
    }

    /** Seed for core `c`'s trace-corruption stream. */
    std::uint64_t
    traceSeed(CoreId core) const
    {
        return hashCombine(trace_base_, core);
    }

    ChaosCounters &counters() { return counters_; }
    const ChaosCounters &counters() const { return counters_; }

  private:
    ChaosConfig config_;
    Rng streams_[kNumChaosSites];
    std::uint64_t trace_base_ = 0;
    ChaosCounters counters_;
};

/**
 * Trace-corruption layer: wraps a core's raw source and bit-flips the
 * virtual address or PC of records at the chaos rate, before address
 * translation (so corruption lands anywhere in the 64-bit virtual
 * space and the translation layer's own guards stay exercised). The
 * instruction type is never touched — the stream stays well-formed;
 * the corruption models wrong *data*, not an undecodable trace.
 * next() and nextBatch() draw identically per record, so batching
 * cores and single-stepping tests see the same schedule.
 */
class ChaosTraceSource : public TraceSource
{
  public:
    ChaosTraceSource(std::unique_ptr<TraceSource> inner, double rate,
                     std::uint64_t seed, std::uint64_t *counter)
        : inner_(std::move(inner)), rng_(seed), rate_(rate),
          counter_(counter)
    {
    }

    TraceRecord
    next() override
    {
        TraceRecord rec = inner_->next();
        maybeCorrupt(rec);
        return rec;
    }

    void
    nextBatch(TraceRecord *out, std::size_t count) override
    {
        inner_->nextBatch(out, count);
        for (std::size_t i = 0; i < count; ++i)
            maybeCorrupt(out[i]);
    }

  private:
    void
    maybeCorrupt(TraceRecord &rec)
    {
        if (!rng_.chance(rate_))
            return;
        const std::uint64_t pick = rng_.next();
        const unsigned bit = static_cast<unsigned>(rng_.below(64));
        if (pick & 1)
            rec.addr ^= 1ULL << bit;
        else
            rec.pc ^= 1ULL << bit;
        ++*counter_;
    }

    std::unique_ptr<TraceSource> inner_;
    Rng rng_;
    double rate_;
    std::uint64_t *counter_;
};

} // namespace bingo::chaos

#endif // BINGO_CHAOS_CHAOS_HPP
