#include "chaos/shadow_memory.hpp"

#include <cstdio>
#include <string>

#include "cache/cache.hpp"
#include "common/sim_check.hpp"

namespace bingo::chaos
{

namespace
{

std::string
hexBlock(Addr block)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(block));
    return buf;
}

} // namespace

void
ShadowMemory::verifyPrivate(const Cache &cache, CoreId core,
                            Cycle now) const
{
    cache.forEachResident([&](Addr block, bool dirty, CoreId owner) {
        (void)owner;
        if (dirty && !writtenBy(block, core))
            throw SimError(
                "shadow", now,
                cache.name() + " holds dirty block " + hexBlock(block) +
                    " that core " + std::to_string(core) +
                    " never stored to (functional model disagrees "
                    "with the timing hierarchy)");
    });
}

void
ShadowMemory::verifyShared(const Cache &cache, Cycle now) const
{
    cache.forEachResident([&](Addr block, bool dirty, CoreId owner) {
        (void)owner;
        if (dirty && !writtenAny(block))
            throw SimError(
                "shadow", now,
                cache.name() + " holds dirty block " + hexBlock(block) +
                    " that no core ever stored to (functional model "
                    "disagrees with the timing hierarchy)");
    });
}

} // namespace bingo::chaos
