/**
 * @file
 * Differential-verification backstop: a slow functional memory model
 * cross-checked against the timing hierarchy under BINGO_CHECK.
 *
 * The timing caches move block-granular metadata, not data, so the
 * property a functional model can check is provenance: a dirty block
 * can only exist in a cache that some store actually wrote. The shadow
 * keeps a flat map of block -> writer-core mask, fed by the L1D access
 * hooks (every store access fires its cache's hook exactly once, on
 * both the hit and miss paths), and the periodic checkInvariants sweep
 * walks every resident line: a dirty line in core c's L1D that no
 * store of core c ever touched — or a dirty LLC line no store of any
 * core touched — means the hierarchy invented or misrouted a write,
 * and becomes a located SimError instead of a silent stat skew.
 *
 * Cost: one hash-map insert per store access plus a full cache walk
 * per check interval, and the map grows with the store footprint of
 * the run — which is why it only exists under BINGO_CHECK.
 */

#ifndef BINGO_CHAOS_SHADOW_MEMORY_HPP
#define BINGO_CHAOS_SHADOW_MEMORY_HPP

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace bingo
{
class Cache;
}

namespace bingo::chaos
{

/** Functional block -> last-writers model (see file comment). */
class ShadowMemory
{
  public:
    /** Record a store by `core` to block-aligned address `block`. */
    void
    recordWrite(Addr block, CoreId core)
    {
        // Cores beyond 63 alias into the mask; aliasing can only turn
        // a true violation into a pass, never a clean run into a
        // false alarm.
        writers_[block] |= 1ULL << (core & 63);
    }

    bool
    writtenBy(Addr block, CoreId core) const
    {
        const auto it = writers_.find(block);
        return it != writers_.end() &&
               (it->second & (1ULL << (core & 63))) != 0;
    }

    bool
    writtenAny(Addr block) const
    {
        return writers_.find(block) != writers_.end();
    }

    /**
     * Every dirty line of core `core`'s private cache must trace back
     * to a store by that core. Throws SimError("shadow", now, ...)
     * naming the cache and block on the first violation.
     */
    void verifyPrivate(const Cache &cache, CoreId core,
                       Cycle now) const;

    /**
     * Every dirty line of the shared cache must trace back to a store
     * by some core (the LLC's per-line core field is the last toucher,
     * not the writer, so per-core attribution is not checkable there).
     */
    void verifyShared(const Cache &cache, Cycle now) const;

    std::size_t trackedBlocks() const { return writers_.size(); }

  private:
    std::unordered_map<Addr, std::uint64_t> writers_;
};

} // namespace bingo::chaos

#endif // BINGO_CHAOS_SHADOW_MEMORY_HPP
