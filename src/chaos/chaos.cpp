#include "chaos/chaos.hpp"

#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace bingo::chaos
{

namespace
{

[[noreturn]] void
rejectSpec(const std::string &spec, const std::string &why)
{
    throw std::invalid_argument("BINGO_CHAOS spec \"" + spec +
                                "\": " + why);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

struct SiteName
{
    const char *name;
    ChaosSite site;
};

constexpr SiteName kSiteNames[] = {
    {"trace", ChaosSite::Trace},   {"dram", ChaosSite::Dram},
    {"meta", ChaosSite::Metadata}, {"mshr", ChaosSite::Mshr},
    {"pf", ChaosSite::Prefetcher}, {"transport", ChaosSite::Transport},
};

unsigned
parseSites(const std::string &spec, const std::string &sites)
{
    // `all` covers the simulation sites only: transport faults change
    // runtime behaviour (re-dispatch, retries) without changing any
    // job's result, so they must be requested by name.
    if (sites == "all")
        return kSimSiteMask;
    unsigned mask = 0;
    for (const std::string &part : splitOn(sites, ',')) {
        bool found = false;
        for (const SiteName &entry : kSiteNames) {
            if (part == entry.name) {
                mask |= siteBit(entry.site);
                found = true;
                break;
            }
        }
        if (!found)
            rejectSpec(spec, "unknown site \"" + part +
                                 "\" (want trace,dram,meta,mshr,pf,"
                                 "transport or all)");
    }
    return mask;
}

} // namespace

ChaosConfig
parseChaosSpec(const std::string &spec)
{
    const std::vector<std::string> parts = splitOn(spec, ':');
    if (parts.size() < 2 || parts.size() > 3)
        rejectSpec(spec, "want seed:rate[:sites]");

    ChaosConfig config;
    config.enabled = true;

    try {
        std::size_t used = 0;
        config.seed = std::stoull(parts[0], &used, 0);
        if (used != parts[0].size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        rejectSpec(spec, "bad seed \"" + parts[0] + "\"");
    }

    try {
        std::size_t used = 0;
        config.rate = std::stod(parts[1], &used);
        if (used != parts[1].size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        rejectSpec(spec, "bad rate \"" + parts[1] + "\"");
    }
    if (!(config.rate >= 0.0 && config.rate <= 1.0))
        rejectSpec(spec, "rate must be within [0, 1]");

    config.site_mask = parts.size() == 3 ? parseSites(spec, parts[2])
                                         : kSimSiteMask;
    if (config.site_mask == 0)
        rejectSpec(spec, "no sites enabled");
    return config;
}

std::string
formatChaosSpec(const ChaosConfig &config)
{
    if (!config.enabled)
        return "off";
    std::string sites;
    for (const SiteName &entry : kSiteNames) {
        if ((config.site_mask & siteBit(entry.site)) == 0)
            continue;
        if (!sites.empty())
            sites += ',';
        sites += entry.name;
    }
    return std::to_string(config.seed) + ":" +
           std::to_string(config.rate) + ":" + sites;
}

const ChaosConfig &
chaosFromEnv()
{
    static const ChaosConfig config = [] {
        const char *spec = std::getenv("BINGO_CHAOS");
        if (spec == nullptr || spec[0] == '\0')
            return ChaosConfig{};
        return parseChaosSpec(spec);
    }();
    return config;
}

void
applyEnvChaos(SystemConfig &cfg)
{
    if (cfg.chaos.enabled)
        return;
    ChaosConfig env = chaosFromEnv();
    // The transport site never reaches the simulated machine: strip it
    // so fingerprints (and the journal diff oracle) are identical with
    // and without transport chaos. A transport-only spec stays off.
    env.site_mask &= kSimSiteMask;
    if (env.site_mask == 0)
        env.enabled = false;
    cfg.chaos = env;
}

TransportFaultPlan
transportChaosFromEnv()
{
    const ChaosConfig &env = chaosFromEnv();
    TransportFaultPlan plan;
    if (env.enabled &&
        (env.site_mask & siteBit(ChaosSite::Transport)) != 0) {
        plan.enabled = true;
        plan.seed = env.seed;
        plan.rate = env.rate;
    }
    return plan;
}

} // namespace bingo::chaos
