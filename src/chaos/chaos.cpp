#include "chaos/chaos.hpp"

#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace bingo::chaos
{

namespace
{

[[noreturn]] void
rejectSpec(const std::string &spec, const std::string &why)
{
    throw std::invalid_argument("BINGO_CHAOS spec \"" + spec +
                                "\": " + why);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

struct SiteName
{
    const char *name;
    ChaosSite site;
};

constexpr SiteName kSiteNames[] = {
    {"trace", ChaosSite::Trace},   {"dram", ChaosSite::Dram},
    {"meta", ChaosSite::Metadata}, {"mshr", ChaosSite::Mshr},
    {"pf", ChaosSite::Prefetcher},
};

unsigned
parseSites(const std::string &spec, const std::string &sites)
{
    if (sites == "all")
        return (1u << kNumChaosSites) - 1;
    unsigned mask = 0;
    for (const std::string &part : splitOn(sites, ',')) {
        bool found = false;
        for (const SiteName &entry : kSiteNames) {
            if (part == entry.name) {
                mask |= siteBit(entry.site);
                found = true;
                break;
            }
        }
        if (!found)
            rejectSpec(spec, "unknown site \"" + part +
                                 "\" (want trace,dram,meta,mshr,pf "
                                 "or all)");
    }
    return mask;
}

} // namespace

ChaosConfig
parseChaosSpec(const std::string &spec)
{
    const std::vector<std::string> parts = splitOn(spec, ':');
    if (parts.size() < 2 || parts.size() > 3)
        rejectSpec(spec, "want seed:rate[:sites]");

    ChaosConfig config;
    config.enabled = true;

    try {
        std::size_t used = 0;
        config.seed = std::stoull(parts[0], &used, 0);
        if (used != parts[0].size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        rejectSpec(spec, "bad seed \"" + parts[0] + "\"");
    }

    try {
        std::size_t used = 0;
        config.rate = std::stod(parts[1], &used);
        if (used != parts[1].size())
            throw std::invalid_argument("trailing characters");
    } catch (const std::exception &) {
        rejectSpec(spec, "bad rate \"" + parts[1] + "\"");
    }
    if (!(config.rate >= 0.0 && config.rate <= 1.0))
        rejectSpec(spec, "rate must be within [0, 1]");

    config.site_mask = parts.size() == 3
                           ? parseSites(spec, parts[2])
                           : (1u << kNumChaosSites) - 1;
    if (config.site_mask == 0)
        rejectSpec(spec, "no sites enabled");
    return config;
}

std::string
formatChaosSpec(const ChaosConfig &config)
{
    if (!config.enabled)
        return "off";
    std::string sites;
    for (const SiteName &entry : kSiteNames) {
        if ((config.site_mask & siteBit(entry.site)) == 0)
            continue;
        if (!sites.empty())
            sites += ',';
        sites += entry.name;
    }
    return std::to_string(config.seed) + ":" +
           std::to_string(config.rate) + ":" + sites;
}

const ChaosConfig &
chaosFromEnv()
{
    static const ChaosConfig config = [] {
        const char *spec = std::getenv("BINGO_CHAOS");
        if (spec == nullptr || spec[0] == '\0')
            return ChaosConfig{};
        return parseChaosSpec(spec);
    }();
    return config;
}

void
applyEnvChaos(SystemConfig &cfg)
{
    if (!cfg.chaos.enabled)
        cfg.chaos = chaosFromEnv();
}

} // namespace bingo::chaos
