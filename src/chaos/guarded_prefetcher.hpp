/**
 * @file
 * Quarantine wrapper: graceful degradation for faulty prefetchers.
 *
 * A buggy or chaos-perturbed prefetcher model must never take down a
 * run — the run completes prefetcher-off and the sweep records a
 * DEGRADED verdict instead of aborting. GuardedPrefetcher wraps any
 * model and intercepts every virtual entry point: a SimError or other
 * exception escaping the model, a candidate outside the physical
 * address space, or a runaway candidate burst quarantines the model
 * mid-run. Once quarantined the wrapper swallows all further calls
 * (the machine keeps running, prefetcher-off) and remembers the first
 * failure's reason and cycle for the JobOutcome / run.json verdict.
 */

#ifndef BINGO_CHAOS_GUARDED_PREFETCHER_HPP
#define BINGO_CHAOS_GUARDED_PREFETCHER_HPP

#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace bingo::chaos
{

/** Fault-isolating wrapper around any Prefetcher (see file comment). */
class GuardedPrefetcher : public Prefetcher
{
  public:
    /// Candidate-burst bound per access: no real model emits more than
    /// a region's worth of blocks times a small degree; thousands mean
    /// the model is looping.
    static constexpr std::size_t kMaxCandidatesPerAccess = 512;

    /// Physical addresses are < 2^50 (38-bit PPN + 12-bit page offset);
    /// a candidate at or above this bound is fabricated, not mapped.
    static constexpr Addr kMaxCandidateAddr = 1ULL << 52;

    GuardedPrefetcher(std::unique_ptr<Prefetcher> inner,
                      std::string component);

    void onAccess(const PrefetchAccess &access,
                  std::vector<Addr> &out) override;
    void onEviction(Addr block) override;
    void perturbMetadata(Rng &rng) override;
    std::string name() const override { return name_; }

    /** Expose the guard's own counters under `prefix`+"guard." and the
     *  wrapped model's under `prefix` (clean-run keys unchanged). */
    void registerTelemetry(telemetry::Registry &registry,
                           const std::string &prefix) const override;

    /**
     * Arm a chaos-injected fault: the next onAccess throws inside the
     * guarded region, exercising the real quarantine path.
     */
    void injectFault() { fault_pending_ = true; }

    bool quarantined() const { return quarantined_; }
    const std::string &quarantineReason() const { return reason_; }
    Cycle quarantineCycle() const { return quarantine_cycle_; }

    /** The wrapped model (valid for the wrapper's lifetime). */
    Prefetcher *inner() const { return inner_.get(); }

  private:
    void quarantine(Cycle cycle, const std::string &reason);

    std::unique_ptr<Prefetcher> inner_;
    std::string component_;
    std::string name_;
    bool fault_pending_ = false;
    bool quarantined_ = false;
    std::string reason_;
    Cycle quarantine_cycle_ = 0;
};

} // namespace bingo::chaos

#endif // BINGO_CHAOS_GUARDED_PREFETCHER_HPP
