#include "dist/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dist/protocol.hpp"
#include "sim/journal.hpp"
#include "telemetry/export.hpp"

namespace bingo
{
namespace dist
{

namespace
{

constexpr char kManifestTag[] = "bingo-sweep";
constexpr unsigned kManifestVersion = 1;
constexpr std::size_t kMaxJobs = 1u << 20;
constexpr std::size_t kMaxEntry = 1u * 1024u * 1024u;

} // namespace

std::string
encodeManifest(const std::vector<SweepJob> &jobs)
{
    std::ostringstream out;
    out << kManifestTag << ' ' << kManifestVersion << '\n';
    out << "jobs " << jobs.size() << '\n';
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        WireJob wire;
        wire.index = i;
        wire.fingerprint = jobFingerprint(jobs[i]);
        wire.job = jobs[i];
        const std::string entry = encodeJob(wire);
        out << "entry " << entry.size() << '\n' << entry;
    }
    out << "end\n";
    return out.str();
}

bool
decodeManifest(const std::string &text, std::vector<SweepJob> &out)
{
    std::istringstream in(text);
    std::string tag;
    unsigned version = 0;
    std::size_t count = 0;
    std::string keyword;
    if (!(in >> tag >> version) || tag != kManifestTag ||
        version != kManifestVersion)
        return false;
    if (!(in >> keyword >> count) || keyword != "jobs" ||
        count > kMaxJobs)
        return false;
    std::vector<SweepJob> jobs;
    jobs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::size_t size = 0;
        if (!(in >> keyword >> size) || keyword != "entry" ||
            size > kMaxEntry || in.get() != '\n')
            return false;
        std::string entry(size, '\0');
        if (!in.read(entry.data(),
                     static_cast<std::streamsize>(size)))
            return false;
        WireJob wire;
        if (!decodeJob(entry, wire))
            return false;
        jobs.push_back(std::move(wire.job));
    }
    if (!(in >> keyword) || keyword != "end")
        return false;
    out = std::move(jobs);
    return true;
}

std::string
manifestPath(const std::string &journal_dir)
{
    return (std::filesystem::path(journal_dir) / "manifest.sweep")
        .string();
}

void
manifestStore(const std::string &journal_dir,
              const std::vector<SweepJob> &jobs)
{
    std::error_code ec;
    std::filesystem::create_directories(journal_dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "bingo: cannot create journal dir %s for the "
                     "sweep manifest: %s\n",
                     journal_dir.c_str(), ec.message().c_str());
        return;
    }
    try {
        telemetry::atomicWrite(manifestPath(journal_dir),
                               encodeManifest(jobs));
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "bingo: could not write sweep manifest %s: %s "
                     "(sweep continues; it will not be "
                     "coordinator-crash-resumable)\n",
                     manifestPath(journal_dir).c_str(), e.what());
    }
}

bool
manifestLoad(const std::string &journal_dir, std::vector<SweepJob> &out)
{
    std::ifstream in(manifestPath(journal_dir), std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    return decodeManifest(text.str(), out);
}

int
runManifestSweep(const std::string &manifest_path)
{
    std::ifstream in(manifest_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bingo_worker: cannot read manifest %s\n",
                     manifest_path.c_str());
        return 64;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<SweepJob> jobs;
    if (!decodeManifest(text.str(), jobs)) {
        std::fprintf(stderr,
                     "bingo_worker: undecodable sweep manifest %s\n",
                     manifest_path.c_str());
        return 64;
    }
    const std::string journal_dir =
        std::filesystem::path(manifest_path).parent_path().string();
    // The manifest's own directory is the journal: resume state and
    // new results live next to it, and a rerun after any crash picks
    // both up. Overrides an inherited BINGO_JOURNAL_DIR so the journal
    // the manifest belongs to is always the one used.
    ::setenv("BINGO_JOURNAL_DIR", journal_dir.c_str(), 1);

    std::printf("Manifest sweep: %zu job(s) from %s\n", jobs.size(),
                manifest_path.c_str());
    const std::vector<JobOutcome> outcomes = runSweepOutcomes(jobs);
    std::size_t failed = 0;
    std::size_t skipped = 0;
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.status == JobStatus::Failed)
            ++failed;
        else if (outcome.status == JobStatus::Skipped)
            ++skipped;
    }
    std::printf("Manifest sweep: %zu job(s), %zu resumed from the "
                "journal, %zu failed\n",
                outcomes.size(), skipped, failed);
    reportFailures(jobs, outcomes);
    return failed == 0 ? 0 : 1;
}

} // namespace dist
} // namespace bingo
