#include "dist/transport.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

#include "common/hash.hpp"

namespace bingo
{
namespace dist
{

namespace
{

/** Frame magic; the trailing digit is the framing version. */
constexpr char kLinkMagic[] = "BJF2";
constexpr std::size_t kMagicLen = 4;

constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;
/** Longest well-formed header line; garbage beyond this can never
 *  become a valid header and triggers a resync. */
constexpr std::size_t kMaxHeader = 160;

std::string
errnoMessage(const char *what)
{
    if (errno == EPIPE || errno == ECONNRESET)
        return std::string("broken pipe: ") + what +
               " failed, peer is gone (" + std::strerror(errno) + ")";
    return std::string(what) + " failed: " + std::strerror(errno);
}

} // namespace

std::uint32_t
crc32(std::string_view data)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char byte : data)
        crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

// --- SocketChannel -----------------------------------------------------

bool
SocketChannel::write(const char *data, std::size_t size)
{
    if (fd_ < 0) {
        if (error_.empty())
            error_ = "socket channel already closed";
        return false;
    }
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a dead peer yields EPIPE, never SIGPIPE.
        const ssize_t n =
            ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = errnoMessage("send");
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

ReadStatus
SocketChannel::read(char *buf, std::size_t size, std::size_t &got)
{
    got = 0;
    if (fd_ < 0) {
        if (error_.empty())
            error_ = "socket channel already closed";
        return ReadStatus::Error;
    }
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, size, 0);
        if (n > 0) {
            got = static_cast<std::size_t>(n);
            return ReadStatus::Data;
        }
        if (n == 0)
            return ReadStatus::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return ReadStatus::WouldBlock;
        error_ = errnoMessage("recv");
        return ReadStatus::Error;
    }
}

void
SocketChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// --- PipeChannel -------------------------------------------------------

bool
PipeChannel::write(const char *data, std::size_t size)
{
    if (write_fd_ < 0) {
        if (error_.empty())
            error_ = "pipe channel already closed";
        return false;
    }
    std::size_t sent = 0;
    while (sent < size) {
        // Callers ignore SIGPIPE process-wide (coordinator and worker
        // both install SIG_IGN), so a dead peer yields EPIPE here.
        const ssize_t n = ::write(write_fd_, data + sent, size - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = errnoMessage("write");
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

ReadStatus
PipeChannel::read(char *buf, std::size_t size, std::size_t &got)
{
    got = 0;
    if (read_fd_ < 0) {
        if (error_.empty())
            error_ = "pipe channel already closed";
        return ReadStatus::Error;
    }
    for (;;) {
        const ssize_t n = ::read(read_fd_, buf, size);
        if (n > 0) {
            got = static_cast<std::size_t>(n);
            return ReadStatus::Data;
        }
        if (n == 0)
            return ReadStatus::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return ReadStatus::WouldBlock;
        error_ = errnoMessage("read");
        return ReadStatus::Error;
    }
}

void
PipeChannel::close()
{
    if (read_fd_ >= 0) {
        ::close(read_fd_);
        read_fd_ = -1;
    }
    if (write_fd_ >= 0) {
        ::close(write_fd_);
        write_fd_ = -1;
    }
}

// --- FramedLink --------------------------------------------------------

std::string
FramedLink::encodeFrame(MsgType type, std::uint64_t seq,
                        std::string_view payload)
{
    char body[96];
    const int body_len = std::snprintf(
        body, sizeof(body), "%u %llu %zu",
        static_cast<unsigned>(type),
        static_cast<unsigned long long>(seq), payload.size());
    // The CRC covers "<type> <seq> <len>\n<payload>": corrupting any
    // header field, the length, or any payload byte is detected.
    std::string covered;
    covered.reserve(static_cast<std::size_t>(body_len) + 1 +
                    payload.size());
    covered.append(body, static_cast<std::size_t>(body_len));
    covered.push_back('\n');
    covered.append(payload);
    char header[128];
    const int header_len = std::snprintf(
        header, sizeof(header), "%s %s %08x\n", kLinkMagic, body,
        crc32(covered));
    std::string frame;
    frame.reserve(static_cast<std::size_t>(header_len) + payload.size());
    frame.append(header, static_cast<std::size_t>(header_len));
    frame.append(payload);
    return frame;
}

void
FramedLink::enableFaults(const chaos::TransportFaultPlan &plan,
                         LinkRole role, std::uint64_t slot,
                         std::uint64_t epoch)
{
    if (!plan.enabled)
        return;
    faults_enabled_ = true;
    fault_rate_ = plan.rate;
    // Per-endpoint stream: coordinator and worker sides of one link
    // draw independently, and a respawned worker (new epoch) does not
    // replay its predecessor's schedule — a deterministic first-frame
    // sever would otherwise livelock the slot.
    fault_rng_.reseed(hashCombine(
        hashCombine(plan.seed, static_cast<std::uint64_t>(role) + 1),
        hashCombine(slot + 1, epoch + 1)));
}

bool
FramedLink::writeBytes(const std::string &bytes)
{
    if (!channel_ || !channel_->isOpen()) {
        if (error_.empty())
            error_ = channel_ ? channel_->error() : "no channel";
        return false;
    }
    if (!channel_->write(bytes.data(), bytes.size())) {
        error_ = channel_->error();
        return false;
    }
    return true;
}

void
FramedLink::flushStalled()
{
    const auto now = std::chrono::steady_clock::now();
    while (!outbox_.empty() && outbox_.front().release <= now) {
        const std::string bytes = std::move(outbox_.front().bytes);
        outbox_.pop_front();
        if (!writeBytes(bytes))
            return;  // Link down; error_ is set.
    }
}

bool
FramedLink::faultedWrite(std::string bytes)
{
    // One fault opportunity per frame. Draw order is fixed — chance,
    // then kind, then kind-specific values — so the schedule depends
    // only on the frame sequence, exactly like the simulation sites.
    if (faults_enabled_ && fault_rng_.chance(fault_rate_)) {
        ++stats_.injected_faults;
        switch (fault_rng_.below(5)) {
        case 0: {  // Corrupt: flip one bit anywhere in the frame.
            const std::size_t pos = static_cast<std::size_t>(
                fault_rng_.below(bytes.size()));
            bytes[pos] = static_cast<char>(
                bytes[pos] ^ (1u << fault_rng_.below(8)));
            break;
        }
        case 1: {  // Truncate: drop the frame's tail mid-write.
            const std::size_t cut = 1 + static_cast<std::size_t>(
                fault_rng_.below(bytes.size()));
            bytes.resize(bytes.size() - std::min(cut, bytes.size() - 1));
            break;
        }
        case 2:  // Duplicate: the frame arrives twice.
            if (!outbox_.empty()) {
                outbox_.push_back(
                    {std::chrono::steady_clock::now(), bytes});
                outbox_.push_back(
                    {std::chrono::steady_clock::now(), bytes});
                return true;
            }
            return writeBytes(bytes) && writeBytes(bytes);
        case 3: {  // Stall: delay this frame (and everything after it).
            const auto release =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(5 + fault_rng_.below(120));
            outbox_.push_back({release, std::move(bytes)});
            return true;
        }
        case 4:  // Sever: the connection drops mid-conversation.
            channel_->close();
            error_ = "transport severed by fault injection "
                     "(BINGO_CHAOS transport site)";
            return false;
        default:
            break;
        }
    }
    if (!outbox_.empty()) {
        // A stalled frame blocks the stream: later frames queue behind
        // it so per-direction ordering — which the lease/heartbeat
        // reconciliation depends on — is preserved.
        outbox_.push_back({std::chrono::steady_clock::now(),
                           std::move(bytes)});
        return true;
    }
    return writeBytes(bytes);
}

bool
FramedLink::send(MsgType type, std::string_view payload)
{
    if (!error_.empty())
        return false;
    flushStalled();
    if (!error_.empty())
        return false;
    std::string bytes = encodeFrame(type, next_seq_++, payload);
    if (!faultedWrite(std::move(bytes)))
        return false;
    ++stats_.frames_sent;
    flushStalled();
    return error_.empty();
}

bool
FramedLink::resync(std::size_t from)
{
    // Skip to the next plausible frame start. Counted once per resync:
    // one corrupted/truncated frame costs one event however many bytes
    // it mangled.
    ++stats_.corrupt_frames_dropped;
    const std::size_t pos = inbuf_.find(kLinkMagic, from);
    if (pos == std::string::npos) {
        // Keep a magic-sized tail in case the magic itself is split
        // across reads.
        const std::size_t keep =
            inbuf_.size() < kMagicLen - 1 ? inbuf_.size()
                                          : kMagicLen - 1;
        inbuf_.erase(0, inbuf_.size() - keep);
        return false;
    }
    inbuf_.erase(0, pos);
    return true;
}

bool
FramedLink::decodeBuffered(bool &made_progress)
{
    made_progress = false;
    for (;;) {
        const std::size_t newline = inbuf_.find('\n');
        if (newline == std::string::npos) {
            if (inbuf_.size() <= kMaxHeader)
                return true;  // Header may still be arriving.
            if (!resync(1))
                return true;
            made_progress = true;
            continue;
        }
        std::istringstream header(inbuf_.substr(0, newline));
        std::string magic;
        unsigned type = 0;
        unsigned long long seq = 0;
        std::size_t size = 0;
        std::string crc_hex;
        char *endp = nullptr;
        unsigned long crc_claim = 0;
        const bool parsed =
            static_cast<bool>(header >> magic >> type >> seq >> size >>
                              crc_hex) &&
            magic == kLinkMagic &&
            type <= static_cast<unsigned>(MsgType::Bye) &&
            size <= kMaxFramePayload && crc_hex.size() == 8 &&
            (crc_claim = std::strtoul(crc_hex.c_str(), &endp, 16),
             endp != nullptr && *endp == '\0');
        if (!parsed) {
            if (!resync(1))
                return true;
            made_progress = true;
            continue;
        }
        if (inbuf_.size() < newline + 1 + size)
            return true;  // Payload still in flight.

        // Re-derive the covered bytes and check. A truncated frame
        // swallows the next frame's header as "payload" and fails
        // here; resync then finds the real next frame inside the
        // rejected bytes.
        std::string covered = std::to_string(type) + ' ' +
                              std::to_string(seq) + ' ' +
                              std::to_string(size) + '\n';
        covered.append(inbuf_, newline + 1, size);
        if (crc32(covered) != static_cast<std::uint32_t>(crc_claim)) {
            if (!resync(1))
                return true;
            made_progress = true;
            continue;
        }

        Frame frame;
        frame.type = static_cast<MsgType>(type);
        frame.payload = inbuf_.substr(newline + 1, size);
        inbuf_.erase(0, newline + 1 + size);
        made_progress = true;

        // Sequence discipline: duplicates (injected or replayed) are
        // suppressed; holes mean frames died on the wire and are
        // counted so the loss is observable, not silent.
        if (seq <= last_seq_seen_) {
            ++stats_.duplicate_frames_suppressed;
            continue;
        }
        stats_.frame_gaps += seq - last_seq_seen_ - 1;
        last_seq_seen_ = seq;
        ++stats_.frames_received;
        decoded_.push_back(std::move(frame));
    }
}

bool
FramedLink::poll(std::vector<Frame> &out)
{
    flushStalled();
    bool progress = false;
    if (channel_ && channel_->isOpen() && !peer_gone_) {
        char chunk[65536];
        for (;;) {
            std::size_t got = 0;
            const ReadStatus status =
                channel_->read(chunk, sizeof(chunk), got);
            if (status == ReadStatus::Data) {
                inbuf_.append(chunk, got);
                continue;
            }
            if (status == ReadStatus::WouldBlock)
                break;
            // EOF or hard error: decode what we have, then report the
            // peer as gone so buffered final frames still surface.
            peer_gone_ = true;
            if (status == ReadStatus::Error && error_.empty())
                error_ = channel_->error();
            break;
        }
    } else {
        peer_gone_ = true;
    }
    decodeBuffered(progress);
    while (!decoded_.empty()) {
        out.push_back(std::move(decoded_.front()));
        decoded_.pop_front();
    }
    return !peer_gone_;
}

bool
FramedLink::readBlocking(Frame &out)
{
    for (;;) {
        bool progress = false;
        decodeBuffered(progress);
        if (!decoded_.empty()) {
            out = std::move(decoded_.front());
            decoded_.pop_front();
            return true;
        }
        if (peer_gone_ || !channel_ || !channel_->isOpen())
            return false;
        char chunk[65536];
        std::size_t got = 0;
        const ReadStatus status =
            channel_->read(chunk, sizeof(chunk), got);
        if (status == ReadStatus::Data) {
            inbuf_.append(chunk, got);
            continue;
        }
        if (status == ReadStatus::WouldBlock)
            continue;  // Only plausible under test harnesses.
        peer_gone_ = true;
        if (status == ReadStatus::Error && error_.empty())
            error_ = channel_->error();
    }
}

void
FramedLink::close()
{
    if (channel_)
        channel_->close();
    outbox_.clear();
}

} // namespace dist
} // namespace bingo
