#include "dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dist/manifest.hpp"
#include "dist/protocol.hpp"
#include "dist/supervisor.hpp"
#include "sim/journal.hpp"
#include "telemetry/export.hpp"

namespace bingo
{
namespace dist
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    return end == value ? fallback : parsed;
}

double
envSeconds(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    return (end == value || parsed < 0.0) ? fallback : parsed;
}

/**
 * Ignore SIGPIPE for the coordinator's lifetime in this function
 * (restoring the previous disposition on exit): a worker that dies
 * while the coordinator writes to it must surface as a structured
 * broken-pipe transport error from the ByteChannel, never kill the
 * coordinator — the coordinator outliving its workers is the whole
 * point of supervision. (SocketChannel also passes MSG_NOSIGNAL, but
 * PipeChannel writes to plain pipes, which have no such flag.)
 */
class ScopedSigpipeIgnore
{
  public:
    ScopedSigpipeIgnore() { prev_ = std::signal(SIGPIPE, SIG_IGN); }
    ~ScopedSigpipeIgnore()
    {
        if (prev_ != SIG_ERR)
            std::signal(SIGPIPE, prev_);
    }

  private:
    using Handler = void (*)(int);
    Handler prev_ = SIG_ERR;
};

/** One unit of distributable work: a sweep job or a baseline warm. */
struct Item
{
    enum class State
    {
        Pending,   ///< Waiting for a worker (possibly in backoff).
        InFlight,  ///< Dispatched, result outstanding.
        Done,      ///< Result received, or terminally resolved.
    };

    bool baseline = false;
    std::size_t job_index = 0;  ///< Into `jobs` (job items only).
    std::uint64_t wire_index = 0;
    SweepJob baseline_job;      ///< Materialized for baseline items.
    std::string fingerprint;

    State state = State::Pending;
    Clock::time_point not_before{};  ///< Re-dispatch backoff gate.
    unsigned kills = 0;       ///< Consecutive workers this item killed.
    unsigned requeues = 0;    ///< Lease revocations (backoff ladder).
    /// At-most-once-commit guard: bumped at every dispatch, echoed by
    /// the worker, checked on receipt. A stalled worker that resurfaces
    /// after its job was re-dispatched holds an old lease and its
    /// result is dropped as stale.
    std::uint64_t lease = 0;
    bool have_result = false;
    bool poisoned = false;
    bool interrupted = false;
    WireResult result;
};

/** One worker slot: the process (when alive) plus respawn state. */
struct Slot
{
    WorkerProc proc;
    Clock::time_point respawn_at{};
    bool exhausted = false;  ///< Respawn budget spent.
};

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

/** transport_health.json body for `report`. */
std::string
transportHealthJson(const DistReport &report)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"workers_spawned\": " << report.workers_spawned << ",\n"
        << "  \"workers_lost\": " << report.workers_lost << ",\n"
        << "  \"reconnects\": " << report.reconnects << ",\n"
        << "  \"redispatched\": " << report.redispatched << ",\n"
        << "  \"poisoned\": " << report.poisoned << ",\n"
        << "  \"fallback_jobs\": " << report.fallback_jobs << ",\n"
        << "  \"corrupt_frames_dropped\": "
        << report.corrupt_frames_dropped << ",\n"
        << "  \"duplicate_frames_suppressed\": "
        << report.duplicate_frames_suppressed << ",\n"
        << "  \"frame_gaps\": " << report.frame_gaps << ",\n"
        << "  \"injected_faults\": " << report.injected_faults << ",\n"
        << "  \"leases_revoked\": " << report.leases_revoked << ",\n"
        << "  \"stale_results_dropped\": "
        << report.stale_results_dropped << ",\n"
        << "  \"log_records\": " << report.log_records << "\n"
        << "}\n";
    return out.str();
}

} // namespace

bool
runSweepDistributed(const std::vector<SweepJob> &jobs,
                    const std::vector<std::size_t> &pending,
                    std::vector<JobOutcome> &outcomes,
                    unsigned num_workers, DistReport *report)
{
    const std::vector<std::string> hosts = sweepDistHosts();
    const std::string binary = workerBinaryPath();
    if (hosts.empty() && binary.empty()) {
        std::fprintf(
            stderr,
            "bingo: distributed sweep requested but no bingo_worker "
            "binary found (set BINGO_WORKER_BIN or build the "
            "bingo_worker target) and BINGO_DIST_HOSTS is empty; "
            "running in-process instead\n");
        return false;
    }
    if (pending.empty())
        return true;

    if (num_workers == 0)
        num_workers = sweepDistWorkers();
    if (num_workers == 0 && !hosts.empty())
        num_workers = static_cast<unsigned>(
            std::min<std::size_t>(hosts.size(), 256));
    num_workers = std::max(1u, num_workers);

    const std::string journal_dir = sweepJournalDir();
    // Make the sweep coordinator-crash-resumable before dispatching
    // anything. runSweepOutcomes already wrote this manifest for
    // journaled sweeps; rewriting it is byte-idempotent (it is a pure
    // function of the job list), and direct callers of this function
    // get the same guarantee.
    if (!journal_dir.empty())
        manifestStore(journal_dir, jobs);
    // Local workers always journal into shards; without a canonical
    // journal the shards live in a temp tree that is simply deleted at
    // the end (results still arrive over the wire). Host-backed (stdio)
    // workers never journal locally — the coordinator logs their
    // accepted results instead.
    std::string shard_base;
    if (journal_dir.empty()) {
        shard_base = (std::filesystem::temp_directory_path() /
                      ("bingo-dist-" + std::to_string(::getpid())))
                         .string();
    }
    const auto shardDirFor = [&](unsigned slot) {
        return journal_dir.empty()
                   ? shard_base + "/w" + std::to_string(slot)
                   : journalShardDir(journal_dir, slot);
    };
    // Slots cycle over the host templates; with no hosts every slot is
    // a local socketpair worker.
    const auto hostFor = [&](unsigned slot) -> const std::string * {
        if (hosts.empty())
            return nullptr;
        return &hosts[slot % hosts.size()];
    };

    const double heartbeat_timeout =
        envSeconds("BINGO_DIST_HEARTBEAT_S", 5.0);
    const double job_deadline =
        envSeconds("BINGO_DIST_JOB_TIMEOUT_S", 0.0);
    const double redispatch_grace =
        envSeconds("BINGO_DIST_REDISPATCH_S", 2.0);
    const unsigned poison_kills = static_cast<unsigned>(std::max<
        std::uint64_t>(1, envU64("BINGO_DIST_POISON_KILLS", 2)));
    const unsigned max_respawns = static_cast<unsigned>(
        std::min<std::uint64_t>(envU64("BINGO_DIST_MAX_RESPAWNS", 5),
                                1000));

    DistReport stats;

    // --- Build the work list: deduplicated baseline warms first (they
    // gate dependent jobs' metrics, mirroring the in-process pool
    // order), then the pending sweep jobs.
    std::vector<Item> items;
    {
        std::map<std::string, SweepJob> baselines;
        for (std::size_t i : pending) {
            if (!jobs[i].compare_baseline)
                continue;
            SweepJob base;
            base.workload = jobs[i].workload;
            base.options = jobs[i].options;
            // Baselines always run the default substrate (see
            // runIndexed in experiment.cpp).
            base.config = SystemConfig{};
            baselines.try_emplace(jobFingerprint(base), base);
        }
        std::uint64_t next_wire = jobs.size();
        for (auto &[fingerprint, base] : baselines) {
            RunResult restored;
            if (!journal_dir.empty() &&
                journalLoad(journal_dir, fingerprint, restored)) {
                primeBaselineCache(base.workload, base.options,
                                   restored);
                continue;
            }
            Item item;
            item.baseline = true;
            item.baseline_job = base;
            item.fingerprint = fingerprint;
            item.wire_index = next_wire++;
            items.push_back(std::move(item));
        }
    }
    const std::size_t baseline_items = items.size();
    for (std::size_t i : pending) {
        Item item;
        item.job_index = i;
        item.wire_index = i;
        item.fingerprint = jobFingerprint(jobs[i]);
        items.push_back(std::move(item));
    }
    // Results name jobs by wire index; in_flight alone cannot identify
    // a late (stale-lease) result's item.
    std::map<std::uint64_t, std::size_t> item_by_wire;
    for (std::size_t k = 0; k < items.size(); ++k)
        item_by_wire.emplace(items[k].wire_index, k);

    std::printf("Distributed sweep: %llu job(s)%s across %u worker "
                "process(es)%s\n",
                static_cast<unsigned long long>(pending.size()),
                baseline_items > 0 ? " (+ baselines)" : "",
                num_workers,
                hosts.empty() ? "" : " via BINGO_DIST_HOSTS");

    ScopedSweepSignals signal_guard;
    ScopedSigpipeIgnore sigpipe_guard;

    const auto spawnSlot = [&](Slot &slot) {
        const unsigned s = slot.proc.slot;
        if (const std::string *host = hostFor(s); host != nullptr)
            return spawnWorkerCommand(*host, s, slot.proc);
        return spawnWorker(binary, shardDirFor(s), s, slot.proc);
    };

    std::vector<Slot> slots(num_workers);
    for (unsigned s = 0; s < num_workers; ++s) {
        slots[s].proc.slot = s;
        if (spawnSlot(slots[s]))
            ++stats.workers_spawned;
        else
            slots[s].respawn_at = Clock::now();
    }

    std::uint64_t total_runs = 0;
    std::uint64_t total_cycles = 0;

    const auto jobOf = [&](const Item &item) -> const SweepJob & {
        return item.baseline ? item.baseline_job
                             : jobs[item.job_index];
    };

    // Fold a link's robustness counters into the sweep report. Called
    // exactly once per link instance: right before every killWorker
    // (which resets the link) — absorb() on a link-less slot is a
    // no-op, so the belt-and-braces final pass cannot double-count.
    const auto absorbLinkStats = [&](Slot &slot) {
        if (!slot.proc.link)
            return;
        const LinkStats &ls = slot.proc.link->stats();
        stats.corrupt_frames_dropped += ls.corrupt_frames_dropped;
        stats.duplicate_frames_suppressed +=
            ls.duplicate_frames_suppressed;
        stats.frame_gaps += ls.frame_gaps;
        stats.injected_faults += ls.injected_faults;
    };

    const auto finalizePoison = [&](Item &item, const char *reason) {
        item.state = Item::State::Done;
        item.poisoned = true;
        ++stats.poisoned;
        std::fprintf(stderr,
                     "bingo: job %llu (%s) quarantined as POISON after "
                     "killing %u consecutive worker(s) (last: %s); "
                     "sweep continues without it\n",
                     static_cast<unsigned long long>(item.wire_index),
                     jobOf(item).workload.c_str(), item.kills, reason);
    };

    const auto workerDied = [&](Slot &slot, const char *reason) {
        if (!slot.proc.alive() && !slot.proc.link)
            return;
        const unsigned s = slot.proc.slot;
        absorbLinkStats(slot);
        killWorker(slot.proc);
        ++stats.workers_lost;
        if (slot.proc.in_flight != WorkerProc::kIdle) {
            Item &item = items[slot.proc.in_flight];
            slot.proc.in_flight = WorkerProc::kIdle;
            if (item.state == Item::State::InFlight) {
                ++item.kills;
                if (item.kills >= poison_kills) {
                    finalizePoison(item, reason);
                } else {
                    item.state = Item::State::Pending;
                    item.not_before =
                        Clock::now() +
                        std::chrono::milliseconds(retryBackoffMs(
                            item.wire_index, item.kills));
                    ++stats.redispatched;
                    std::fprintf(
                        stderr,
                        "bingo: worker w%u lost (%s); re-dispatching "
                        "job %llu\n",
                        s, reason,
                        static_cast<unsigned long long>(
                            item.wire_index));
                }
            }
        } else {
            std::fprintf(stderr, "bingo: worker w%u lost (%s)\n", s,
                         reason);
        }
        if (slot.proc.spawn_count >= 1 + max_respawns) {
            slot.exhausted = true;
        } else {
            slot.respawn_at =
                Clock::now() +
                std::chrono::milliseconds(
                    retryBackoffMs(s, slot.proc.spawn_count));
        }
    };

    // Append an accepted result record from a worker without a local
    // shard to the coordinator's own shard log, so journalMergeShards
    // can fold it in like any shard record.
    const auto logRemoteRecord = [&](const Item &item) {
        if (journal_dir.empty() || item.baseline ||
            item.result.record.empty())
            return;
        try {
            journalLogAppend(journalShardRoot(journal_dir) +
                                 "/coordinator.log",
                             item.fingerprint, item.result.record);
            ++stats.log_records;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "bingo: %s\n", e.what());
        }
    };

    const auto handleFrame = [&](Slot &slot, const Frame &frame) {
        slot.proc.last_heard = Clock::now();
        switch (frame.type) {
        case MsgType::Hello: {
            WireHello hello;
            if (decodeHello(frame.payload, hello))
                slot.proc.said_hello = true;
            break;
        }
        case MsgType::Heartbeat: {
            WireHeartbeat beat;
            if (!decodeHeartbeat(frame.payload, beat))
                break;
            slot.proc.busy_hint = beat.busy;
            // Reconciliation: the worker says idle but the coordinator
            // believes it busy. Either the Job frame was lost in
            // transit (corrupted, truncated, stalled past the grace)
            // or the Result frame was — both look identical from here.
            // Revoke the lease and requeue; if the worker later
            // resurfaces with the old lease, its result is stale.
            if (!beat.busy &&
                slot.proc.in_flight != WorkerProc::kIdle) {
                const double waited =
                    std::chrono::duration<double>(
                        Clock::now() - slot.proc.job_start)
                        .count();
                if (waited <= redispatch_grace)
                    break;
                Item &item = items[slot.proc.in_flight];
                slot.proc.in_flight = WorkerProc::kIdle;
                if (item.state != Item::State::InFlight)
                    break;
                item.state = Item::State::Pending;
                item.not_before =
                    Clock::now() +
                    std::chrono::milliseconds(retryBackoffMs(
                        item.wire_index, ++item.requeues));
                ++stats.leases_revoked;
                ++stats.redispatched;
                std::fprintf(
                    stderr,
                    "bingo: worker w%u reports idle while job %llu "
                    "was believed in flight; revoking lease %llu and "
                    "re-dispatching\n",
                    slot.proc.slot,
                    static_cast<unsigned long long>(item.wire_index),
                    static_cast<unsigned long long>(item.lease));
            }
            break;
        }
        case MsgType::Result: {
            WireResult result;
            if (!decodeResult(frame.payload, result))
                break;
            const auto found = item_by_wire.find(result.index);
            if (found == item_by_wire.end())
                break;
            Item &item = items[found->second];
            // The worker really did simulate, whatever we decide about
            // the commit — keep the throughput accounting honest.
            total_runs += result.runs;
            total_cycles += result.cycles;
            if (item.state != Item::State::InFlight ||
                result.lease != item.lease) {
                // Do NOT free the slot here: a stale result means the
                // worker is draining a backlog of superseded Job
                // frames, and its *current* lease (possibly on this
                // very item) is still outstanding. Freeing it would
                // orphan that dispatch — an item stuck InFlight with
                // no slot owning it — if the live result frame is then
                // lost. The slot frees on the accepted result, or via
                // idle-heartbeat revocation.
                ++stats.stale_results_dropped;
                std::fprintf(
                    stderr,
                    "bingo: dropping stale result for job %llu "
                    "(lease %llu, current %llu) — already "
                    "re-dispatched\n",
                    static_cast<unsigned long long>(result.index),
                    static_cast<unsigned long long>(result.lease),
                    static_cast<unsigned long long>(item.lease));
                break;
            }
            // Accepted: only the slot holding the current lease can
            // have delivered it (leases are echoed from Job frames).
            if (slot.proc.in_flight == found->second) {
                slot.proc.in_flight = WorkerProc::kIdle;
                slot.proc.busy_hint = false;
            }
            item.result = std::move(result);
            item.have_result = true;
            item.state = Item::State::Done;
            item.kills = 0;
            if (!slot.proc.journals_locally)
                logRemoteRecord(item);
            break;
        }
        case MsgType::Bye:
        default:
            break;
        }
    };

    // --- Supervision loop: poll, reap, requeue, dispatch.
    for (;;) {
        bool progress = false;

        for (Slot &slot : slots) {
            if (!slot.proc.alive() || !slot.proc.link)
                continue;
            slot.proc.link->flushStalled();
            std::vector<Frame> frames;
            const bool still_open = slot.proc.link->poll(frames);
            progress |= !frames.empty();
            for (const Frame &frame : frames)
                handleFrame(slot, frame);
            if (!still_open) {
                // Copy: workerDied tears the link (and its error
                // string) down before printing the reason.
                const std::string why =
                    slot.proc.link->error().empty()
                        ? "process exited"
                        : slot.proc.link->error();
                workerDied(slot, why.c_str());
            }
        }

        const auto now = Clock::now();
        for (Slot &slot : slots) {
            if (!slot.proc.alive())
                continue;
            const double silent =
                std::chrono::duration<double>(now -
                                              slot.proc.last_heard)
                    .count();
            if (silent > heartbeat_timeout) {
                workerDied(slot, "heartbeat timeout");
                continue;
            }
            if (job_deadline > 0.0 && !slot.proc.idle()) {
                const double running =
                    std::chrono::duration<double>(now -
                                                  slot.proc.job_start)
                        .count();
                if (running > job_deadline)
                    workerDied(slot, "job deadline exceeded");
            }
        }

        // A signal stops dispatch: everything not yet in flight is
        // resolved as interrupted; in-flight jobs drain below.
        if (sweepInterrupted()) {
            for (Item &item : items) {
                if (item.state == Item::State::Pending) {
                    item.state = Item::State::Done;
                    item.interrupted = true;
                }
            }
        }

        std::size_t open_items = 0;
        bool any_in_flight = false;
        for (const Item &item : items) {
            if (item.state == Item::State::Pending)
                ++open_items;
            else if (item.state == Item::State::InFlight)
                any_in_flight = true;
        }
        if (open_items == 0 && !any_in_flight)
            break;

        // Respawn lost slots while there is still work to hand them.
        if (open_items > 0 && !sweepInterrupted()) {
            for (Slot &slot : slots) {
                if (slot.proc.alive() || slot.exhausted ||
                    now < slot.respawn_at)
                    continue;
                const bool respawn = slot.proc.spawn_count > 0;
                if (spawnSlot(slot)) {
                    ++stats.workers_spawned;
                    if (respawn)
                        ++stats.reconnects;
                    progress = true;
                } else {
                    // fork/socketpair failure is systemic, not a flaky
                    // worker — don't spin on it.
                    slot.exhausted = true;
                }
            }
        }

        // Dispatch pending items to idle workers.
        for (Slot &slot : slots) {
            if (!slot.proc.alive() || !slot.proc.said_hello ||
                !slot.proc.idle() || slot.proc.busy_hint ||
                sweepInterrupted())
                continue;
            Item *next = nullptr;
            std::size_t next_id = kNoItem;
            for (std::size_t k = 0; k < items.size(); ++k) {
                Item &item = items[k];
                if (item.state == Item::State::Pending &&
                    now >= item.not_before) {
                    next = &item;
                    next_id = k;
                    break;
                }
            }
            if (next == nullptr)
                continue;
            WireJob wire;
            wire.index = next->wire_index;
            wire.lease = ++next->lease;
            wire.fingerprint = next->fingerprint;
            wire.job = jobOf(*next);
            wire.baseline = next->baseline;
            if (!slot.proc.link ||
                !slot.proc.link->send(MsgType::Job, encodeJob(wire))) {
                workerDied(slot, "send failed");
                continue;
            }
            next->state = Item::State::InFlight;
            slot.proc.in_flight = next_id;
            slot.proc.job_start = Clock::now();
            slot.proc.busy_hint = true;  // Optimistic until the next
                                         // heartbeat confirms.
            progress = true;
        }

        // Every slot dead and unrespawnable with work left: run the
        // remainder in-process. The sweep survives its whole fleet.
        const bool any_usable = std::any_of(
            slots.begin(), slots.end(), [](const Slot &slot) {
                return slot.proc.alive() || !slot.exhausted;
            });
        if (!any_usable && open_items > 0) {
            std::fprintf(stderr,
                         "bingo: all %u worker slot(s) exhausted; "
                         "running %llu remaining job(s) in-process\n",
                         num_workers,
                         static_cast<unsigned long long>(open_items));
            for (Item &item : items) {
                if (item.state != Item::State::Pending)
                    continue;
                if (sweepInterrupted()) {
                    item.state = Item::State::Done;
                    item.interrupted = true;
                    continue;
                }
                RunResult run;
                const JobOutcome outcome = runSingleJob(
                    jobOf(item), item.wire_index, run);
                item.state = Item::State::Done;
                item.have_result = true;
                item.result.index = item.wire_index;
                item.result.status = outcome.status;
                item.result.attempts = outcome.attempts;
                item.result.wall_seconds = outcome.wall_seconds;
                item.result.error = outcome.error;
                item.result.fingerprint = item.fingerprint;
                if (outcome.ok()) {
                    item.result.record =
                        journalEncode(item.fingerprint, run);
                    if (!item.baseline && !journal_dir.empty()) {
                        try {
                            journalStore(journal_dir, item.fingerprint,
                                         run);
                        } catch (const std::exception &e) {
                            std::fprintf(stderr, "%s\n", e.what());
                        }
                    }
                }
                ++stats.fallback_jobs;
            }
            continue;  // Loop once more to settle bookkeeping.
        }

        if (!progress)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }

    // --- Drain: ask every surviving worker to exit, give the fleet a
    // grace period to say Bye/EOF, then SIGKILL stragglers.
    for (Slot &slot : slots) {
        if (slot.proc.alive() && slot.proc.link)
            slot.proc.link->send(MsgType::Shutdown, "");
    }
    const auto grace_end =
        Clock::now() + std::chrono::milliseconds(3000);
    for (;;) {
        bool any_alive = false;
        for (Slot &slot : slots) {
            if (!slot.proc.alive() || !slot.proc.link)
                continue;
            slot.proc.link->flushStalled();
            std::vector<Frame> frames;
            if (!slot.proc.link->poll(frames)) {
                absorbLinkStats(slot);
                killWorker(slot.proc);
            } else {
                any_alive = true;
            }
        }
        if (!any_alive || Clock::now() >= grace_end)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (Slot &slot : slots) {
        absorbLinkStats(slot);
        killWorker(slot.proc);
    }

    // --- Fold worker shards (and the coordinator log) into the
    // canonical journal. Byte-identity with a single-process run is
    // structural: journalEncode wrote every record, leases made every
    // commit at-most-once, and conflicting duplicates throw rather
    // than merge.
    if (!journal_dir.empty()) {
        journalMergeShards(journal_dir);
    } else if (!shard_base.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(shard_base, ec);
    }

    addExternalRunStats(total_runs, total_cycles);

    // --- Materialize outcomes (and prime + journal baselines, exactly
    // as the in-process baselineFor would have).
    for (Item &item : items) {
        if (item.baseline) {
            if (item.have_result && !item.result.record.empty()) {
                RunResult run;
                if (journalDecode(item.result.record, item.fingerprint,
                                  run)) {
                    primeBaselineCache(item.baseline_job.workload,
                                       item.baseline_job.options, run);
                    if (!journal_dir.empty()) {
                        try {
                            journalStore(journal_dir, item.fingerprint,
                                         run);
                        } catch (const std::exception &e) {
                            std::fprintf(stderr, "%s\n", e.what());
                        }
                    }
                }
            }
            // A failed/interrupted baseline is swallowed like the
            // in-process warmOne: the bench's own baselineFor call
            // will retry and report in context.
            continue;
        }
        JobOutcome &outcome = outcomes[item.job_index];
        if (item.poisoned) {
            outcome.status = JobStatus::Failed;
            outcome.attempts = item.kills;
            outcome.error =
                "poison job: crashed or hung " +
                std::to_string(item.kills) +
                " consecutive worker process(es); quarantined "
                "(BINGO_DIST_POISON_KILLS)";
            continue;
        }
        if (item.interrupted) {
            outcome.status = JobStatus::Failed;
            outcome.attempts = 0;
            outcome.error =
                "sweep interrupted by signal before this job started "
                "(journaled jobs are kept; re-run to resume)";
            continue;
        }
        if (!item.have_result) {
            outcome.status = JobStatus::Failed;
            outcome.error = "distributed sweep: no result received";
            continue;
        }
        outcome.status = item.result.status;
        outcome.attempts = item.result.attempts;
        outcome.wall_seconds = item.result.wall_seconds;
        outcome.error = item.result.error;
        if (!item.result.record.empty() &&
            !journalDecode(item.result.record, item.fingerprint,
                           outcome.result)) {
            outcome.status = JobStatus::Failed;
            outcome.error =
                "distributed sweep: undecodable result record from "
                "worker";
        }
    }

    if (stats.workers_lost > 0 || stats.poisoned > 0 ||
        stats.fallback_jobs > 0 || stats.leases_revoked > 0 ||
        stats.stale_results_dropped > 0) {
        std::printf(
            "Distributed sweep supervision: %u worker(s) lost, %llu "
            "job(s) re-dispatched, %llu lease(s) revoked, %llu stale "
            "result(s) dropped, %llu poison job(s), %llu job(s) "
            "completed in-process\n",
            stats.workers_lost,
            static_cast<unsigned long long>(stats.redispatched),
            static_cast<unsigned long long>(stats.leases_revoked),
            static_cast<unsigned long long>(
                stats.stale_results_dropped),
            static_cast<unsigned long long>(stats.poisoned),
            static_cast<unsigned long long>(stats.fallback_jobs));
    }

    // Transport health goes next to the telemetry exports (or the
    // working directory) — never into the journal, whose contents must
    // stay a pure function of the job list so the byte-identity oracle
    // holds with and without transport chaos.
    {
        const char *dir = std::getenv("BINGO_TELEMETRY_DIR");
        const std::filesystem::path health_path =
            std::filesystem::path(dir != nullptr && *dir != '\0'
                                      ? dir
                                      : ".") /
            "transport_health.json";
        try {
            telemetry::atomicWrite(health_path,
                                   transportHealthJson(stats));
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "bingo: cannot write %s: %s (continuing)\n",
                         health_path.string().c_str(), e.what());
        }
    }

    if (report != nullptr)
        *report = stats;
    return true;
}

} // namespace dist
} // namespace bingo
