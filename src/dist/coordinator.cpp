#include "dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dist/protocol.hpp"
#include "dist/supervisor.hpp"
#include "sim/journal.hpp"

namespace bingo
{
namespace dist
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    return end == value ? fallback : parsed;
}

double
envSeconds(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    return (end == value || parsed < 0.0) ? fallback : parsed;
}

/** One unit of distributable work: a sweep job or a baseline warm. */
struct Item
{
    enum class State
    {
        Pending,   ///< Waiting for a worker (possibly in backoff).
        InFlight,  ///< Dispatched, result outstanding.
        Done,      ///< Result received, or terminally resolved.
    };

    bool baseline = false;
    std::size_t job_index = 0;  ///< Into `jobs` (job items only).
    std::uint64_t wire_index = 0;
    SweepJob baseline_job;      ///< Materialized for baseline items.
    std::string fingerprint;

    State state = State::Pending;
    Clock::time_point not_before{};  ///< Re-dispatch backoff gate.
    unsigned kills = 0;       ///< Consecutive workers this item killed.
    bool have_result = false;
    bool poisoned = false;
    bool interrupted = false;
    WireResult result;
};

/** One worker slot: the process (when alive) plus respawn state. */
struct Slot
{
    WorkerProc proc;
    Clock::time_point respawn_at{};
    bool exhausted = false;  ///< Respawn budget spent.
};

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

} // namespace

bool
runSweepDistributed(const std::vector<SweepJob> &jobs,
                    const std::vector<std::size_t> &pending,
                    std::vector<JobOutcome> &outcomes,
                    unsigned num_workers, DistReport *report)
{
    const std::string binary = workerBinaryPath();
    if (binary.empty()) {
        std::fprintf(
            stderr,
            "bingo: BINGO_DIST_WORKERS set but no bingo_worker binary "
            "found (set BINGO_WORKER_BIN or build the bingo_worker "
            "target); running in-process instead\n");
        return false;
    }
    if (pending.empty())
        return true;

    if (num_workers == 0)
        num_workers = sweepDistWorkers();
    num_workers = std::max(1u, num_workers);

    const std::string journal_dir = sweepJournalDir();
    // Workers always journal into shards; without a canonical journal
    // the shards live in a temp tree that is simply deleted at the end
    // (results still arrive over the wire).
    std::string shard_base;
    if (journal_dir.empty()) {
        shard_base = (std::filesystem::temp_directory_path() /
                      ("bingo-dist-" + std::to_string(::getpid())))
                         .string();
    }
    const auto shardDirFor = [&](unsigned slot) {
        return journal_dir.empty()
                   ? shard_base + "/w" + std::to_string(slot)
                   : journalShardDir(journal_dir, slot);
    };

    const double heartbeat_timeout =
        envSeconds("BINGO_DIST_HEARTBEAT_S", 5.0);
    const double job_deadline =
        envSeconds("BINGO_DIST_JOB_TIMEOUT_S", 0.0);
    const unsigned poison_kills = static_cast<unsigned>(std::max<
        std::uint64_t>(1, envU64("BINGO_DIST_POISON_KILLS", 2)));
    const unsigned max_respawns = static_cast<unsigned>(
        std::min<std::uint64_t>(envU64("BINGO_DIST_MAX_RESPAWNS", 5),
                                1000));

    DistReport stats;

    // --- Build the work list: deduplicated baseline warms first (they
    // gate dependent jobs' metrics, mirroring the in-process pool
    // order), then the pending sweep jobs.
    std::vector<Item> items;
    {
        std::map<std::string, SweepJob> baselines;
        for (std::size_t i : pending) {
            if (!jobs[i].compare_baseline)
                continue;
            SweepJob base;
            base.workload = jobs[i].workload;
            base.options = jobs[i].options;
            // Baselines always run the default substrate (see
            // runIndexed in experiment.cpp).
            base.config = SystemConfig{};
            baselines.try_emplace(jobFingerprint(base), base);
        }
        std::uint64_t next_wire = jobs.size();
        for (auto &[fingerprint, base] : baselines) {
            RunResult restored;
            if (!journal_dir.empty() &&
                journalLoad(journal_dir, fingerprint, restored)) {
                primeBaselineCache(base.workload, base.options,
                                   restored);
                continue;
            }
            Item item;
            item.baseline = true;
            item.baseline_job = base;
            item.fingerprint = fingerprint;
            item.wire_index = next_wire++;
            items.push_back(std::move(item));
        }
    }
    const std::size_t baseline_items = items.size();
    for (std::size_t i : pending) {
        Item item;
        item.job_index = i;
        item.wire_index = i;
        item.fingerprint = jobFingerprint(jobs[i]);
        items.push_back(std::move(item));
    }

    std::printf("Distributed sweep: %llu job(s)%s across %u worker "
                "process(es)\n",
                static_cast<unsigned long long>(pending.size()),
                baseline_items > 0 ? " (+ baselines)" : "",
                num_workers);

    ScopedSweepSignals signal_guard;

    std::vector<Slot> slots(num_workers);
    for (unsigned s = 0; s < num_workers; ++s) {
        slots[s].proc.slot = s;
        if (spawnWorker(binary, shardDirFor(s), s, slots[s].proc))
            ++stats.workers_spawned;
        else
            slots[s].respawn_at = Clock::now();
    }

    std::uint64_t total_runs = 0;
    std::uint64_t total_cycles = 0;

    const auto jobOf = [&](const Item &item) -> const SweepJob & {
        return item.baseline ? item.baseline_job
                             : jobs[item.job_index];
    };

    const auto finalizePoison = [&](Item &item, const char *reason) {
        item.state = Item::State::Done;
        item.poisoned = true;
        ++stats.poisoned;
        std::fprintf(stderr,
                     "bingo: job %llu (%s) quarantined as POISON after "
                     "killing %u consecutive worker(s) (last: %s); "
                     "sweep continues without it\n",
                     static_cast<unsigned long long>(item.wire_index),
                     jobOf(item).workload.c_str(), item.kills, reason);
    };

    const auto workerDied = [&](Slot &slot, const char *reason) {
        if (!slot.proc.alive() && slot.proc.fd < 0)
            return;
        const unsigned s = slot.proc.slot;
        killWorker(slot.proc);
        ++stats.workers_lost;
        if (slot.proc.in_flight != WorkerProc::kIdle) {
            Item &item = items[slot.proc.in_flight];
            slot.proc.in_flight = WorkerProc::kIdle;
            if (item.state == Item::State::InFlight) {
                ++item.kills;
                if (item.kills >= poison_kills) {
                    finalizePoison(item, reason);
                } else {
                    item.state = Item::State::Pending;
                    item.not_before =
                        Clock::now() +
                        std::chrono::milliseconds(retryBackoffMs(
                            item.wire_index, item.kills));
                    ++stats.redispatched;
                    std::fprintf(
                        stderr,
                        "bingo: worker w%u lost (%s); re-dispatching "
                        "job %llu\n",
                        s, reason,
                        static_cast<unsigned long long>(
                            item.wire_index));
                }
            }
        } else {
            std::fprintf(stderr, "bingo: worker w%u lost (%s)\n", s,
                         reason);
        }
        if (slot.proc.spawn_count >= 1 + max_respawns) {
            slot.exhausted = true;
        } else {
            slot.respawn_at =
                Clock::now() +
                std::chrono::milliseconds(
                    retryBackoffMs(s, slot.proc.spawn_count));
        }
    };

    const auto handleFrame = [&](Slot &slot, const Frame &frame) {
        slot.proc.last_heard = Clock::now();
        switch (frame.type) {
        case MsgType::Hello: {
            WireHello hello;
            if (decodeHello(frame.payload, hello))
                slot.proc.said_hello = true;
            break;
        }
        case MsgType::Result: {
            WireResult result;
            if (!decodeResult(frame.payload, result))
                break;
            const std::size_t item_id = slot.proc.in_flight;
            slot.proc.in_flight = WorkerProc::kIdle;
            if (item_id == kNoItem || item_id >= items.size())
                break;
            Item &item = items[item_id];
            if (item.wire_index != result.index ||
                item.state != Item::State::InFlight)
                break;
            total_runs += result.runs;
            total_cycles += result.cycles;
            item.result = std::move(result);
            item.have_result = true;
            item.state = Item::State::Done;
            item.kills = 0;
            break;
        }
        case MsgType::Heartbeat:
        case MsgType::Bye:
        default:
            break;
        }
    };

    // --- Supervision loop: poll, reap, requeue, dispatch.
    for (;;) {
        bool progress = false;

        for (Slot &slot : slots) {
            if (!slot.proc.alive())
                continue;
            std::vector<Frame> frames;
            const bool still_open = slot.proc.reader.poll(frames);
            progress |= !frames.empty();
            for (const Frame &frame : frames)
                handleFrame(slot, frame);
            if (!still_open)
                workerDied(slot, "process exited");
        }

        const auto now = Clock::now();
        for (Slot &slot : slots) {
            if (!slot.proc.alive())
                continue;
            const double silent =
                std::chrono::duration<double>(now -
                                              slot.proc.last_heard)
                    .count();
            if (silent > heartbeat_timeout) {
                workerDied(slot, "heartbeat timeout");
                continue;
            }
            if (job_deadline > 0.0 && !slot.proc.idle()) {
                const double running =
                    std::chrono::duration<double>(now -
                                                  slot.proc.job_start)
                        .count();
                if (running > job_deadline)
                    workerDied(slot, "job deadline exceeded");
            }
        }

        // A signal stops dispatch: everything not yet in flight is
        // resolved as interrupted; in-flight jobs drain below.
        if (sweepInterrupted()) {
            for (Item &item : items) {
                if (item.state == Item::State::Pending) {
                    item.state = Item::State::Done;
                    item.interrupted = true;
                }
            }
        }

        std::size_t open_items = 0;
        bool any_in_flight = false;
        for (const Item &item : items) {
            if (item.state == Item::State::Pending)
                ++open_items;
            else if (item.state == Item::State::InFlight)
                any_in_flight = true;
        }
        if (open_items == 0 && !any_in_flight)
            break;

        // Respawn lost slots while there is still work to hand them.
        if (open_items > 0 && !sweepInterrupted()) {
            for (Slot &slot : slots) {
                if (slot.proc.alive() || slot.exhausted ||
                    now < slot.respawn_at)
                    continue;
                if (spawnWorker(binary, shardDirFor(slot.proc.slot),
                                slot.proc.slot, slot.proc)) {
                    ++stats.workers_spawned;
                    progress = true;
                } else {
                    // fork/socketpair failure is systemic, not a flaky
                    // worker — don't spin on it.
                    slot.exhausted = true;
                }
            }
        }

        // Dispatch pending items to idle workers.
        for (Slot &slot : slots) {
            if (!slot.proc.alive() || !slot.proc.said_hello ||
                !slot.proc.idle() || sweepInterrupted())
                continue;
            Item *next = nullptr;
            std::size_t next_id = kNoItem;
            for (std::size_t k = 0; k < items.size(); ++k) {
                Item &item = items[k];
                if (item.state == Item::State::Pending &&
                    now >= item.not_before) {
                    next = &item;
                    next_id = k;
                    break;
                }
            }
            if (next == nullptr)
                continue;
            WireJob wire;
            wire.index = next->wire_index;
            wire.fingerprint = next->fingerprint;
            wire.job = jobOf(*next);
            wire.baseline = next->baseline;
            if (!sendFrame(slot.proc.fd, MsgType::Job,
                           encodeJob(wire))) {
                workerDied(slot, "send failed");
                continue;
            }
            next->state = Item::State::InFlight;
            slot.proc.in_flight = next_id;
            slot.proc.job_start = Clock::now();
            progress = true;
        }

        // Every slot dead and unrespawnable with work left: run the
        // remainder in-process. The sweep survives its whole fleet.
        const bool any_usable = std::any_of(
            slots.begin(), slots.end(), [](const Slot &slot) {
                return slot.proc.alive() || !slot.exhausted;
            });
        if (!any_usable && open_items > 0) {
            std::fprintf(stderr,
                         "bingo: all %u worker slot(s) exhausted; "
                         "running %llu remaining job(s) in-process\n",
                         num_workers,
                         static_cast<unsigned long long>(open_items));
            for (Item &item : items) {
                if (item.state != Item::State::Pending)
                    continue;
                if (sweepInterrupted()) {
                    item.state = Item::State::Done;
                    item.interrupted = true;
                    continue;
                }
                RunResult run;
                const JobOutcome outcome = runSingleJob(
                    jobOf(item), item.wire_index, run);
                item.state = Item::State::Done;
                item.have_result = true;
                item.result.index = item.wire_index;
                item.result.status = outcome.status;
                item.result.attempts = outcome.attempts;
                item.result.wall_seconds = outcome.wall_seconds;
                item.result.error = outcome.error;
                item.result.fingerprint = item.fingerprint;
                if (outcome.ok()) {
                    item.result.record =
                        journalEncode(item.fingerprint, run);
                    if (!item.baseline && !journal_dir.empty()) {
                        try {
                            journalStore(journal_dir, item.fingerprint,
                                         run);
                        } catch (const std::exception &e) {
                            std::fprintf(stderr, "%s\n", e.what());
                        }
                    }
                }
                ++stats.fallback_jobs;
            }
            continue;  // Loop once more to settle bookkeeping.
        }

        if (!progress)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }

    // --- Drain: ask every surviving worker to exit, give the fleet a
    // grace period to say Bye/EOF, then SIGKILL stragglers.
    for (Slot &slot : slots) {
        if (slot.proc.alive())
            sendFrame(slot.proc.fd, MsgType::Shutdown, "");
    }
    const auto grace_end =
        Clock::now() + std::chrono::milliseconds(3000);
    for (;;) {
        bool any_alive = false;
        for (Slot &slot : slots) {
            if (!slot.proc.alive())
                continue;
            std::vector<Frame> frames;
            if (!slot.proc.reader.poll(frames))
                killWorker(slot.proc);
            else
                any_alive = true;
        }
        if (!any_alive || Clock::now() >= grace_end)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (Slot &slot : slots)
        killWorker(slot.proc);

    // --- Fold worker shards into the canonical journal. Byte-identity
    // with a single-process run is structural: journalEncode wrote
    // every record, and conflicting duplicates throw rather than merge.
    if (!journal_dir.empty()) {
        journalMergeShards(journal_dir);
    } else if (!shard_base.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(shard_base, ec);
    }

    addExternalRunStats(total_runs, total_cycles);

    // --- Materialize outcomes (and prime baselines).
    for (Item &item : items) {
        if (item.baseline) {
            if (item.have_result && !item.result.record.empty()) {
                RunResult run;
                if (journalDecode(item.result.record, item.fingerprint,
                                  run))
                    primeBaselineCache(item.baseline_job.workload,
                                       item.baseline_job.options, run);
            }
            // A failed/interrupted baseline is swallowed like the
            // in-process warmOne: the bench's own baselineFor call
            // will retry and report in context.
            continue;
        }
        JobOutcome &outcome = outcomes[item.job_index];
        if (item.poisoned) {
            outcome.status = JobStatus::Failed;
            outcome.attempts = item.kills;
            outcome.error =
                "poison job: crashed or hung " +
                std::to_string(item.kills) +
                " consecutive worker process(es); quarantined "
                "(BINGO_DIST_POISON_KILLS)";
            continue;
        }
        if (item.interrupted) {
            outcome.status = JobStatus::Failed;
            outcome.attempts = 0;
            outcome.error =
                "sweep interrupted by signal before this job started "
                "(journaled jobs are kept; re-run to resume)";
            continue;
        }
        if (!item.have_result) {
            outcome.status = JobStatus::Failed;
            outcome.error = "distributed sweep: no result received";
            continue;
        }
        outcome.status = item.result.status;
        outcome.attempts = item.result.attempts;
        outcome.wall_seconds = item.result.wall_seconds;
        outcome.error = item.result.error;
        if (!item.result.record.empty() &&
            !journalDecode(item.result.record, item.fingerprint,
                           outcome.result)) {
            outcome.status = JobStatus::Failed;
            outcome.error =
                "distributed sweep: undecodable result record from "
                "worker";
        }
    }

    if (stats.workers_lost > 0 || stats.poisoned > 0 ||
        stats.fallback_jobs > 0) {
        std::printf(
            "Distributed sweep supervision: %u worker(s) lost, %llu "
            "job(s) re-dispatched, %llu poison job(s), %llu job(s) "
            "completed in-process\n",
            stats.workers_lost,
            static_cast<unsigned long long>(stats.redispatched),
            static_cast<unsigned long long>(stats.poisoned),
            static_cast<unsigned long long>(stats.fallback_jobs));
    }
    if (report != nullptr)
        *report = stats;
    return true;
}

} // namespace dist
} // namespace bingo
