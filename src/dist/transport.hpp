/**
 * @file
 * Transport abstraction for the distributed sweep runtime.
 *
 * PR 7's coordinator spoke raw `BJF1` frames over a trusted AF_UNIX
 * socketpair. A remote hop (ssh stdin/stdout) turns the transport into
 * a fault domain of its own, so the byte stream is now layered:
 *
 *  - ByteChannel — a duplex byte stream. Two implementations:
 *    SocketChannel (the socketpair, send/recv with MSG_NOSIGNAL) and
 *    PipeChannel (a read fd + write fd pair, used for stdio/subprocess
 *    workers launched through BINGO_DIST_HOSTS command templates).
 *    Both surface broken-pipe writes as structured errors instead of
 *    SIGPIPE.
 *
 *  - FramedLink — the robustness layer. Frames are
 *    `BJF2 <type> <seq> <len> <crc32hex>\n<payload>`, with the CRC
 *    computed over `<type> <seq> <len>\n<payload>` so header corruption
 *    is caught too. The receiver resynchronizes to the next magic after
 *    a parse/CRC failure (a corrupted or truncated frame costs exactly
 *    that frame), suppresses duplicated sequence numbers, and counts
 *    sequence gaps so lost frames are observable. Frames within one
 *    direction are delivered in order or not at all — the lease and
 *    heartbeat-reconciliation logic in the coordinator depends on that.
 *
 *  - Deterministic fault injection (the `transport` chaos site of
 *    BINGO_CHAOS, see chaos::transportChaosFromEnv): at each send the
 *    injector may corrupt a byte, truncate the tail, duplicate the
 *    frame, stall it (and everything behind it — ordering is
 *    preserved) for a bounded delay, or sever the channel. Draws come
 *    from a per-endpoint RNG stream seeded from (chaos seed, role,
 *    slot, spawn epoch), so schedules are seed-stable yet a respawned
 *    worker does not replay its predecessor's faults (which could
 *    otherwise livelock on a first-frame sever).
 *
 * None of this changes what any job computes: transport faults perturb
 * delivery, and the coordinator's re-dispatch/lease machinery restores
 * exactly-once journal commits. The merged journal stays byte-identical
 * to a single-process run — that oracle is what the chaos site exists
 * to defend.
 */

#ifndef BINGO_DIST_TRANSPORT_HPP
#define BINGO_DIST_TRANSPORT_HPP

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/rng.hpp"
#include "dist/protocol.hpp"

namespace bingo
{
namespace dist
{

/** Outcome of one ByteChannel::read attempt. */
enum class ReadStatus
{
    Data,        ///< `*got` bytes were read.
    WouldBlock,  ///< Non-blocking fd with nothing buffered.
    Eof,         ///< Orderly end of stream (peer exited).
    Error,       ///< Hard error; ByteChannel::error() explains.
};

/**
 * A duplex byte stream between coordinator and worker. Implementations
 * own their fds and must never raise SIGPIPE: a peer that died mid-
 * write surfaces as a structured error string, because the coordinator
 * outliving its workers is the whole point of supervision.
 */
class ByteChannel
{
  public:
    virtual ~ByteChannel() = default;

    /** Write all of data (EINTR/short-write safe); false = hard error. */
    virtual bool write(const char *data, std::size_t size) = 0;

    /** Read up to `size` bytes into `buf`. Blocking-ness follows the
     *  fd's own O_NONBLOCK flag. */
    virtual ReadStatus read(char *buf, std::size_t size,
                            std::size_t &got) = 0;

    virtual void close() = 0;
    virtual bool isOpen() const = 0;

    const std::string &error() const { return error_; }

  protected:
    std::string error_;
};

/** ByteChannel over one SOCK_STREAM fd (the local socketpair). */
class SocketChannel final : public ByteChannel
{
  public:
    explicit SocketChannel(int fd) : fd_(fd) {}
    ~SocketChannel() override { close(); }

    bool write(const char *data, std::size_t size) override;
    ReadStatus read(char *buf, std::size_t size,
                    std::size_t &got) override;
    void close() override;
    bool isOpen() const override { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/**
 * ByteChannel over a separate read fd and write fd — a subprocess's
 * stdout/stdin as seen from the coordinator, or stdin/stdout as seen
 * from a `bingo_worker --stdio` worker. Either fd may be -1 (half-open
 * channels fail cleanly instead of crashing).
 */
class PipeChannel final : public ByteChannel
{
  public:
    PipeChannel(int read_fd, int write_fd)
        : read_fd_(read_fd), write_fd_(write_fd)
    {
    }
    ~PipeChannel() override { close(); }

    bool write(const char *data, std::size_t size) override;
    ReadStatus read(char *buf, std::size_t size,
                    std::size_t &got) override;
    void close() override;
    bool isOpen() const override
    {
        return read_fd_ >= 0 || write_fd_ >= 0;
    }

  private:
    int read_fd_ = -1;
    int write_fd_ = -1;
};

/** What the robustness layer saw and did on one link. */
struct LinkStats
{
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t corrupt_frames_dropped = 0;  ///< CRC/parse resyncs.
    std::uint64_t duplicate_frames_suppressed = 0;
    std::uint64_t frame_gaps = 0;  ///< Sequence holes (frames lost).
    std::uint64_t injected_faults = 0;  ///< Chaos draws that fired here.

    void
    accumulate(const LinkStats &other)
    {
        frames_sent += other.frames_sent;
        frames_received += other.frames_received;
        corrupt_frames_dropped += other.corrupt_frames_dropped;
        duplicate_frames_suppressed += other.duplicate_frames_suppressed;
        frame_gaps += other.frame_gaps;
        injected_faults += other.injected_faults;
    }
};

/** Sender role half of a fault-stream identity (see endpointSeed). */
enum class LinkRole : std::uint64_t
{
    Coordinator = 0,
    Worker = 1,
};

/**
 * CRC-checked, sequence-numbered framing over a ByteChannel, with
 * optional deterministic fault injection on the send side. One
 * FramedLink per endpoint per direction-pair; the coordinator holds
 * one per worker slot, the worker holds one.
 *
 * Thread-safety: callers serialize sends externally (the worker wraps
 * send() in the same mutex its heartbeat thread uses); reads are
 * single-threaded per link.
 */
class FramedLink
{
  public:
    explicit FramedLink(std::unique_ptr<ByteChannel> channel)
        : channel_(std::move(channel))
    {
    }

    /** Arm the chaos injector for this endpoint's send side. */
    void enableFaults(const chaos::TransportFaultPlan &plan,
                      LinkRole role, std::uint64_t slot,
                      std::uint64_t epoch);

    /**
     * Frame and write one message (flushing any stalled bytes first —
     * a stall delays, it never reorders). Returns false once the link
     * is down (severed, broken pipe, write error); error() explains.
     */
    bool send(MsgType type, std::string_view payload);

    /**
     * Non-blocking drain (coordinator side): pull everything readable,
     * decode, and append complete frames to `out`. Returns false once
     * the peer is gone — buffered frames are still appended first, so
     * a dead worker's final `result` is never lost to the race with
     * its own exit.
     */
    bool poll(std::vector<Frame> &out);

    /**
     * Blocking read of one frame (worker side). False on EOF/error —
     * the coordinator is gone and the worker must exit, never simulate
     * orphaned.
     */
    bool readBlocking(Frame &out);

    /** Release stalled bytes whose deadline passed (poll/send do this
     *  implicitly; the worker's heartbeat tick calls it explicitly). */
    void flushStalled();

    void close();
    bool isOpen() const { return channel_ && channel_->isOpen(); }
    const std::string &error() const { return error_; }

    LinkStats &stats() { return stats_; }
    const LinkStats &stats() const { return stats_; }

    /** Wire bytes for one frame (exposed for tests). */
    static std::string encodeFrame(MsgType type, std::uint64_t seq,
                                   std::string_view payload);

  private:
    bool decodeBuffered(bool &made_progress);
    bool resync(std::size_t from);
    bool writeBytes(const std::string &bytes);
    bool faultedWrite(std::string bytes);

    std::unique_ptr<ByteChannel> channel_;
    std::string error_;
    LinkStats stats_;

    std::uint64_t next_seq_ = 1;
    std::uint64_t last_seq_seen_ = 0;
    std::string inbuf_;
    std::deque<Frame> decoded_;
    bool peer_gone_ = false;

    struct Stalled
    {
        std::chrono::steady_clock::time_point release;
        std::string bytes;
    };
    std::deque<Stalled> outbox_;

    bool faults_enabled_ = false;
    double fault_rate_ = 0.0;
    Rng fault_rng_;
};

/** CRC-32 (IEEE 802.3) of `data`; exposed for tests. */
std::uint32_t crc32(std::string_view data);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_TRANSPORT_HPP
