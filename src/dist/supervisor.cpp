#include "dist/supervisor.hpp"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace bingo
{
namespace dist
{

namespace
{

/** Directory holding the currently running executable ("" if unknown). */
std::string
selfExeDir()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return std::filesystem::path(buf).parent_path().string();
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

std::string
workerBinaryPath()
{
    if (const char *env = std::getenv("BINGO_WORKER_BIN");
        env != nullptr && *env != '\0') {
        std::error_code ec;
        if (std::filesystem::exists(env, ec))
            return env;
        return {};
    }
    const std::string dir = selfExeDir();
    if (dir.empty())
        return {};
    // Benches and examples live next to bingo_worker in build/src;
    // tests live in build/tests, one level over.
    for (const char *candidate :
         {"/bingo_worker", "/../src/bingo_worker", "/../bingo_worker"}) {
        const std::string path = dir + candidate;
        std::error_code ec;
        if (std::filesystem::exists(path, ec))
            return path;
    }
    return {};
}

bool
spawnWorker(const std::string &binary, const std::string &shard_dir,
            unsigned slot, WorkerProc &out)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (pid == 0) {
        // Child: worker end of the pair becomes fd 3, exec the worker.
        ::close(fds[0]);
        if (fds[1] != 3) {
            if (::dup2(fds[1], 3) != 3)
                ::_exit(127);
            ::close(fds[1]);
        }
        const std::string slot_str = std::to_string(slot);
        const char *argv[] = {binary.c_str(),    "--socket-fd", "3",
                              "--shard-dir",     shard_dir.c_str(),
                              "--slot",          slot_str.c_str(),
                              nullptr};
        ::execv(binary.c_str(), const_cast<char *const *>(argv));
        ::_exit(127);
    }

    ::close(fds[1]);
    if (!setNonBlocking(fds[0])) {
        ::close(fds[0]);
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        return false;
    }
    out.pid = pid;
    out.fd = fds[0];
    out.slot = slot;
    ++out.spawn_count;
    out.said_hello = false;
    out.reader.reset(fds[0]);
    out.last_heard = std::chrono::steady_clock::now();
    out.job_start = out.last_heard;
    out.in_flight = WorkerProc::kIdle;
    return true;
}

void
killWorker(WorkerProc &worker)
{
    if (worker.fd >= 0) {
        ::close(worker.fd);
        worker.fd = -1;
    }
    if (worker.pid > 0) {
        ::kill(worker.pid, SIGKILL);
        int status = 0;
        while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
        }
        worker.pid = -1;
    }
}

} // namespace dist
} // namespace bingo
