#include "dist/supervisor.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "chaos/chaos.hpp"

namespace bingo
{
namespace dist
{

namespace
{

/** Directory holding the currently running executable ("" if unknown). */
std::string
selfExeDir()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return std::filesystem::path(buf).parent_path().string();
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Shared post-spawn bookkeeping once a link is established. */
void
armWorker(WorkerProc &out, pid_t pid, unsigned slot,
          std::unique_ptr<ByteChannel> channel, bool journals_locally)
{
    out.pid = pid;
    out.slot = slot;
    ++out.spawn_count;
    out.said_hello = false;
    out.journals_locally = journals_locally;
    out.busy_hint = false;
    out.link = std::make_unique<FramedLink>(std::move(channel));
    // The coordinator's send side participates in transport chaos too;
    // spawn_count as the epoch keeps a respawned slot's schedule fresh.
    out.link->enableFaults(chaos::transportChaosFromEnv(),
                           LinkRole::Coordinator, slot,
                           out.spawn_count);
    out.last_heard = std::chrono::steady_clock::now();
    out.job_start = out.last_heard;
    out.in_flight = WorkerProc::kIdle;
}

} // namespace

std::string
workerBinaryPath()
{
    if (const char *env = std::getenv("BINGO_WORKER_BIN");
        env != nullptr && *env != '\0') {
        std::error_code ec;
        if (std::filesystem::exists(env, ec))
            return env;
        return {};
    }
    const std::string dir = selfExeDir();
    if (dir.empty())
        return {};
    // Benches and examples live next to bingo_worker in build/src;
    // tests live in build/tests, one level over.
    for (const char *candidate :
         {"/bingo_worker", "/../src/bingo_worker", "/../bingo_worker"}) {
        const std::string path = dir + candidate;
        std::error_code ec;
        if (std::filesystem::exists(path, ec))
            return path;
    }
    return {};
}

std::vector<std::string>
sweepDistHosts()
{
    std::vector<std::string> hosts;
    const char *env = std::getenv("BINGO_DIST_HOSTS");
    if (env == nullptr || *env == '\0')
        return hosts;
    std::string entry;
    for (const char *p = env;; ++p) {
        if (*p == ';' || *p == '\0') {
            // Trim surrounding whitespace; drop empty entries.
            std::size_t begin = 0, end = entry.size();
            while (begin < end && std::isspace(
                                      static_cast<unsigned char>(
                                          entry[begin])))
                ++begin;
            while (end > begin && std::isspace(
                                      static_cast<unsigned char>(
                                          entry[end - 1])))
                --end;
            if (end > begin)
                hosts.push_back(entry.substr(begin, end - begin));
            entry.clear();
            if (*p == '\0')
                break;
        } else {
            entry.push_back(*p);
        }
    }
    return hosts;
}

bool
spawnWorker(const std::string &binary, const std::string &shard_dir,
            unsigned slot, WorkerProc &out)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;

    // Epoch for the *worker's* fault stream: it must change across
    // respawns (argv, since a fresh exec re-reads it) or a
    // deterministic first-frame fault would repeat forever.
    const std::string epoch_str = std::to_string(out.spawn_count + 1);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (pid == 0) {
        // Child: worker end of the pair becomes fd 3, exec the worker.
        ::close(fds[0]);
        if (fds[1] != 3) {
            if (::dup2(fds[1], 3) != 3)
                ::_exit(127);
            ::close(fds[1]);
        }
        const std::string slot_str = std::to_string(slot);
        const char *argv[] = {binary.c_str(),    "--socket-fd", "3",
                              "--shard-dir",     shard_dir.c_str(),
                              "--slot",          slot_str.c_str(),
                              "--fault-epoch",   epoch_str.c_str(),
                              nullptr};
        ::execv(binary.c_str(), const_cast<char *const *>(argv));
        ::_exit(127);
    }

    ::close(fds[1]);
    if (!setNonBlocking(fds[0])) {
        ::close(fds[0]);
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        return false;
    }
    armWorker(out, pid, slot, std::make_unique<SocketChannel>(fds[0]),
              /*journals_locally=*/true);
    return true;
}

bool
spawnWorkerCommand(const std::string &command, unsigned slot,
                   WorkerProc &out)
{
    int to_worker[2];   // Coordinator writes → worker stdin.
    int from_worker[2]; // Worker stdout → coordinator reads.
    if (::pipe(to_worker) != 0)
        return false;
    if (::pipe(from_worker) != 0) {
        ::close(to_worker[0]);
        ::close(to_worker[1]);
        return false;
    }

    const std::string full =
        command + " --stdio --slot " + std::to_string(slot) +
        " --fault-epoch " + std::to_string(out.spawn_count + 1);

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {to_worker[0], to_worker[1], from_worker[0],
                       from_worker[1]})
            ::close(fd);
        return false;
    }
    if (pid == 0) {
        ::close(to_worker[1]);
        ::close(from_worker[0]);
        if (::dup2(to_worker[0], 0) != 0 ||
            ::dup2(from_worker[1], 1) != 1)
            ::_exit(127);
        ::close(to_worker[0]);
        ::close(from_worker[1]);
        ::execl("/bin/sh", "sh", "-c", full.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127);
    }

    ::close(to_worker[0]);
    ::close(from_worker[1]);
    if (!setNonBlocking(from_worker[0])) {
        ::close(to_worker[1]);
        ::close(from_worker[0]);
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        return false;
    }
    armWorker(out, pid, slot,
              std::make_unique<PipeChannel>(from_worker[0],
                                            to_worker[1]),
              /*journals_locally=*/false);
    return true;
}

void
killWorker(WorkerProc &worker)
{
    if (worker.link) {
        worker.link->close();
        worker.link.reset();
    }
    if (worker.pid > 0) {
        ::kill(worker.pid, SIGKILL);
        int status = 0;
        while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
        }
        worker.pid = -1;
    }
}

} // namespace dist
} // namespace bingo
