/**
 * @file
 * Wire protocol between the sweep coordinator and its bingo_worker
 * processes (src/dist/coordinator.hpp, src/dist/worker.hpp).
 *
 * Framing — CRC-checked, sequence-numbered `BJF2` frames over an
 * abstract ByteChannel — lives in dist/transport.hpp. This file is the
 * message layer: frame types plus the payload codecs. Payloads are the
 * same pipe-separated, length-prefixed-string, doubles-as-IEEE-bits
 * text the journal uses, so every value round-trips bit-exactly.
 *
 * Messages:
 *  - coordinator → worker: `job` (a fully serialized SweepJob plus the
 *    coordinator's job index, fingerprint and lease token), `shutdown`
 *    (drain and exit).
 *  - worker → coordinator: `hello` (pid/slot/version handshake),
 *    `heartbeat` (liveness plus busy/idle state, every few hundred ms
 *    from a dedicated thread even while a simulation runs — the
 *    coordinator reconciles this state against its dispatch records to
 *    recover jobs whose frames the transport lost), `result` (the
 *    JobOutcome summary, the lease it was computed under, and for
 *    completed jobs the exact journal record bytes — journalEncode
 *    output — so the coordinator needs no second serializer), `bye`
 *    (graceful exit notice).
 *
 * Leases: every dispatch of a work item carries a fresh lease token
 * (a per-item epoch counter). A result is committed only if its lease
 * matches the item's current lease, so a stalled worker that resurfaces
 * after its job was re-dispatched — and whose shard no longer counts —
 * cannot double-commit: at-most-once commit is an invariant of the
 * coordinator, not a property of worker good behaviour.
 *
 * Drift guard: the worker re-derives the job fingerprint from the
 * decoded SweepJob and refuses a mismatch. A SystemConfig field added
 * to the fingerprint but forgotten here therefore fails loudly at the
 * first dispatch instead of silently simulating the wrong config.
 */

#ifndef BINGO_DIST_PROTOCOL_HPP
#define BINGO_DIST_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.hpp"

namespace bingo
{
namespace dist
{

/** Frame types. */
enum class MsgType : unsigned
{
    Hello,
    Heartbeat,
    Job,
    Result,
    Shutdown,
    Bye,
};

/** One parsed frame. */
struct Frame
{
    MsgType type = MsgType::Heartbeat;
    std::string payload;
};

/** `job` payload: the coordinator's view of one dispatched job. */
struct WireJob
{
    std::uint64_t index = 0;       ///< Coordinator job index.
    std::uint64_t lease = 0;       ///< Dispatch epoch; echoed in result.
    std::string fingerprint;       ///< jobFingerprint(job), precomputed.
    SweepJob job;
    /// Baseline warm, not a sweep job: the worker runs it and returns
    /// the record bytes, but does NOT journal it into its shard — the
    /// coordinator journals baselines itself (exactly once, like the
    /// in-process baselineFor), keeping the merged journal
    /// byte-identical to a single-process run.
    bool baseline = false;
};

/** `result` payload: everything the coordinator needs back. */
struct WireResult
{
    std::uint64_t index = 0;
    std::uint64_t lease = 0;       ///< Lease the job ran under.
    JobStatus status = JobStatus::Failed;
    unsigned attempts = 0;
    double wall_seconds = 0.0;
    std::uint64_t runs = 0;        ///< Simulations completed (counters).
    std::uint64_t cycles = 0;      ///< Simulated cycles (counters).
    std::string fingerprint;
    std::string error;             ///< Failure/degradation reason.
    std::string record;            ///< journalEncode bytes; empty when
                                   ///< the job failed.
};

std::string encodeJob(const WireJob &job);
bool decodeJob(const std::string &payload, WireJob &out);

std::string encodeResult(const WireResult &result);
bool decodeResult(const std::string &payload, WireResult &out);

/** `hello` payload. */
struct WireHello
{
    std::uint64_t pid = 0;
    unsigned slot = 0;
};

std::string encodeHello(const WireHello &hello);
bool decodeHello(const std::string &payload, WireHello &out);

/**
 * `heartbeat` payload: liveness plus what the worker believes it is
 * doing. The busy/idle state lets the coordinator detect a job whose
 * Job or Result frame the transport lost (worker idle long after a
 * dispatch) and revoke the lease instead of waiting forever.
 */
struct WireHeartbeat
{
    bool busy = false;
    std::uint64_t index = 0;  ///< In-flight job index (busy only).
    std::uint64_t lease = 0;  ///< Its lease token (busy only).
};

std::string encodeHeartbeat(const WireHeartbeat &beat);
bool decodeHeartbeat(const std::string &payload, WireHeartbeat &out);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_PROTOCOL_HPP
