/**
 * @file
 * Wire protocol between the sweep coordinator and its bingo_worker
 * processes (src/dist/coordinator.hpp, src/dist/worker.hpp).
 *
 * Transport is a SOCK_STREAM socketpair carrying length-prefixed
 * frames: a one-line text header `BJF1 <type> <payload_bytes>\n`
 * followed by exactly `payload_bytes` of payload. Payloads are the
 * same pipe-separated, length-prefixed-string, doubles-as-IEEE-bits
 * text the journal uses, so every value round-trips bit-exactly.
 *
 * Messages:
 *  - coordinator → worker: `job` (a fully serialized SweepJob plus the
 *    coordinator's job index and fingerprint), `shutdown` (drain and
 *    exit).
 *  - worker → coordinator: `hello` (pid/slot/version handshake),
 *    `heartbeat` (liveness, every few hundred ms from a dedicated
 *    thread even while a simulation runs), `result` (the JobOutcome
 *    summary plus, for completed jobs, the exact journal record bytes
 *    — journalEncode output — so the coordinator needs no second
 *    serializer), `bye` (graceful exit notice).
 *
 * Drift guard: the worker re-derives the job fingerprint from the
 * decoded SweepJob and refuses a mismatch. A SystemConfig field added
 * to the fingerprint but forgotten here therefore fails loudly at the
 * first dispatch instead of silently simulating the wrong config.
 */

#ifndef BINGO_DIST_PROTOCOL_HPP
#define BINGO_DIST_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.hpp"

namespace bingo
{
namespace dist
{

/** Frame header magic; the trailing digit is the protocol version. */
inline constexpr char kFrameMagic[] = "BJF1";

/** Frame types. */
enum class MsgType : unsigned
{
    Hello,
    Heartbeat,
    Job,
    Result,
    Shutdown,
    Bye,
};

/** One parsed frame. */
struct Frame
{
    MsgType type = MsgType::Heartbeat;
    std::string payload;
};

/**
 * Write one frame to `fd` (handles short writes; MSG_NOSIGNAL, so a
 * dead peer yields `false` instead of SIGPIPE). Thread-safe only if
 * callers serialize per fd — the worker wraps this in a mutex shared
 * with its heartbeat thread.
 */
bool sendFrame(int fd, MsgType type, std::string_view payload);

/**
 * Incremental frame parser over a stream fd. Feed it bytes with
 * poll()/readBlocking(); complete frames come out in order.
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd = -1) : fd_(fd) {}

    void reset(int fd)
    {
        fd_ = fd;
        buffer_.clear();
    }

    /**
     * Drain everything currently readable from a non-blocking fd into
     * the buffer and append complete frames to `out`. Returns false
     * once the peer is gone (EOF or hard error) — frames already
     * buffered are still appended first, so a worker's final `result`
     * is never lost to the race with its own exit.
     */
    bool poll(std::vector<Frame> &out);

    /**
     * Blocking read of exactly one frame (worker side). Returns false
     * on EOF/error — for a worker that means the coordinator is gone
     * and it must exit rather than run orphaned forever.
     */
    bool readBlocking(Frame &out);

  private:
    bool extract(std::vector<Frame> &out);

    int fd_;
    std::string buffer_;
};

/** `job` payload: the coordinator's view of one dispatched job. */
struct WireJob
{
    std::uint64_t index = 0;       ///< Coordinator job index.
    std::string fingerprint;       ///< jobFingerprint(job), precomputed.
    SweepJob job;
    /// Baseline warm, not a sweep job: the worker runs it and returns
    /// the record bytes, but does NOT journal it into its shard — the
    /// single-process runner never journals baselines, and the merged
    /// journal must stay byte-identical to a single-process run.
    bool baseline = false;
};

/** `result` payload: everything the coordinator needs back. */
struct WireResult
{
    std::uint64_t index = 0;
    JobStatus status = JobStatus::Failed;
    unsigned attempts = 0;
    double wall_seconds = 0.0;
    std::uint64_t runs = 0;        ///< Simulations completed (counters).
    std::uint64_t cycles = 0;      ///< Simulated cycles (counters).
    std::string fingerprint;
    std::string error;             ///< Failure/degradation reason.
    std::string record;            ///< journalEncode bytes; empty when
                                   ///< the job failed.
};

std::string encodeJob(const WireJob &job);
bool decodeJob(const std::string &payload, WireJob &out);

std::string encodeResult(const WireResult &result);
bool decodeResult(const std::string &payload, WireResult &out);

/** `hello` payload. */
struct WireHello
{
    std::uint64_t pid = 0;
    unsigned slot = 0;
};

std::string encodeHello(const WireHello &hello);
bool decodeHello(const std::string &payload, WireHello &out);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_PROTOCOL_HPP
