/**
 * @file
 * bingo_worker entry point. Spawned by the distributed sweep
 * coordinator (src/dist/coordinator.cpp) with its protocol socket on
 * an inherited fd; not meant to be run by hand. See worker.hpp for the
 * protocol loop and EXPERIMENTS.md ("Distributed sweeps") for the
 * operator-facing picture.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/worker.hpp"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket-fd <fd> --shard-dir <dir> --slot <n>\n"
        "Internal worker process of the distributed sweep runner;\n"
        "spawned by the coordinator (BINGO_DIST_WORKERS=N), not run\n"
        "directly.\n",
        argv0);
    return 64;
}

} // namespace

int
main(int argc, char **argv)
{
    int socket_fd = -1;
    std::string shard_dir;
    long slot = -1;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--socket-fd") == 0)
            socket_fd = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--shard-dir") == 0)
            shard_dir = argv[i + 1];
        else if (std::strcmp(argv[i], "--slot") == 0)
            slot = std::atol(argv[i + 1]);
        else
            return usage(argv[0]);
    }
    if (socket_fd < 0 || shard_dir.empty() || slot < 0)
        return usage(argv[0]);
    return bingo::dist::workerMain(socket_fd, shard_dir,
                                   static_cast<unsigned>(slot));
}
