/**
 * @file
 * bingo_worker entry point. Three modes:
 *  - `--socket-fd <fd>` — spawned by the local distributed-sweep
 *    coordinator with its protocol socket on an inherited fd;
 *  - `--stdio` — launched through a BINGO_DIST_HOSTS command template
 *    (typically ssh): the protocol runs over stdin/stdout, which are
 *    re-pointed so stray prints can never corrupt the frame stream;
 *  - `--sweep <manifest>` — run/resume a whole sweep described by a
 *    SweepManifest (dist/manifest.hpp), journaling next to it. This is
 *    the coordinator-crash recovery path: point it at the manifest of
 *    the dead coordinator's journal and the sweep finishes.
 * See worker.hpp for the protocol loop and EXPERIMENTS.md
 * ("Distributed sweeps" / "Multi-machine sweeps") for the
 * operator-facing picture.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <unistd.h>

#include "dist/manifest.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket-fd <fd> --shard-dir <dir> --slot <n>\n"
        "           [--fault-epoch <e>]\n"
        "       %s --stdio [--shard-dir <dir>] [--slot <n>]\n"
        "           [--fault-epoch <e>]\n"
        "       %s --sweep <manifest>\n"
        "Worker process of the distributed sweep runner; spawned by\n"
        "the coordinator (BINGO_DIST_WORKERS=N over a socketpair, or\n"
        "BINGO_DIST_HOSTS command templates over stdio). The --sweep\n"
        "form runs or resumes a manifest's sweep directly — use it to\n"
        "recover a sweep whose coordinator died.\n",
        argv0, argv0, argv0);
    return 64;
}

} // namespace

int
main(int argc, char **argv)
{
    int socket_fd = -1;
    bool stdio = false;
    std::string shard_dir;
    std::string manifest;
    long slot = 0;
    long fault_epoch = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stdio") == 0) {
            stdio = true;
        } else if (i + 1 < argc &&
                   std::strcmp(argv[i], "--socket-fd") == 0) {
            socket_fd = std::atoi(argv[++i]);
        } else if (i + 1 < argc &&
                   std::strcmp(argv[i], "--shard-dir") == 0) {
            shard_dir = argv[++i];
        } else if (i + 1 < argc &&
                   std::strcmp(argv[i], "--slot") == 0) {
            slot = std::atol(argv[++i]);
        } else if (i + 1 < argc &&
                   std::strcmp(argv[i], "--fault-epoch") == 0) {
            fault_epoch = std::atol(argv[++i]);
        } else if (i + 1 < argc &&
                   std::strcmp(argv[i], "--sweep") == 0) {
            manifest = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    if (!manifest.empty())
        return bingo::dist::runManifestSweep(manifest);

    if (stdio) {
        // Keep private copies of the protocol ends, then point fd 1 at
        // stderr: any printf from the simulator (journal notices,
        // bench-style headers) lands in the ssh session's stderr
        // instead of corrupting the frame stream.
        const int in_fd = ::dup(0);
        const int out_fd = ::dup(1);
        if (in_fd < 0 || out_fd < 0) {
            std::fprintf(stderr,
                         "bingo_worker: cannot dup stdio fds\n");
            return 1;
        }
        ::dup2(2, 1);
        return bingo::dist::workerMain(
            std::make_unique<bingo::dist::PipeChannel>(in_fd, out_fd),
            shard_dir, static_cast<unsigned>(slot),
            static_cast<std::uint64_t>(fault_epoch));
    }

    if (socket_fd < 0 || shard_dir.empty() || slot < 0)
        return usage(argv[0]);
    return bingo::dist::workerMain(
        std::make_unique<bingo::dist::SocketChannel>(socket_fd),
        shard_dir, static_cast<unsigned>(slot),
        static_cast<std::uint64_t>(fault_epoch));
}
