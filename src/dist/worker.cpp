#include "dist/worker.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "chaos/chaos.hpp"
#include "dist/protocol.hpp"
#include "sim/experiment.hpp"
#include "sim/journal.hpp"

namespace bingo
{
namespace dist
{

namespace
{

/**
 * Directory for the `:once` knob marker files — shared by every worker
 * of the sweep so the knob fires in exactly one process.
 * BINGO_DIST_TEST_DIR when set (tests that byte-compare journal
 * directories must keep markers out of the journal tree), otherwise
 * the shards root. Empty — knobs disabled — for a shard-less stdio
 * worker without BINGO_DIST_TEST_DIR.
 */
std::string
markerDir(const std::string &shard_dir)
{
    if (const char *env = std::getenv("BINGO_DIST_TEST_DIR");
        env != nullptr && *env != '\0')
        return env;
    if (shard_dir.empty())
        return {};
    return std::filesystem::path(shard_dir).parent_path().string();
}

/** Claim the `:once` marker `tag.<index>.fired`; false = already
 *  claimed by another worker (or no marker dir exists). */
bool
claimOnce(const std::string &dir, const char *tag, std::uint64_t index)
{
    if (dir.empty())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string marker = dir + "/" + tag + "." +
                               std::to_string(index) + ".fired";
    const int fd =
        ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
}

/**
 * Whether the `env_name` fault knob targets sweep job `index`. With
 * the `:once` suffix, an O_CREAT|O_EXCL marker file makes only the
 * first worker (and first dispatch) to draw the job fire; respawned
 * workers simulate it normally, modelling a transient crash instead of
 * a poison job.
 */
bool
knobFires(const char *env_name, std::uint64_t index,
          const std::string &shard_dir, const char *tag)
{
    const char *value = std::getenv(env_name);
    if (value == nullptr || *value == '\0')
        return false;
    char *end = nullptr;
    const unsigned long long target = std::strtoull(value, &end, 10);
    if (end == value || target != index)
        return false;
    if (*end == '\0')
        return true;
    if (std::strcmp(end, ":once") != 0)
        return false;
    return claimOnce(markerDir(shard_dir), tag, index);
}

/**
 * BINGO_DIST_TEST_STALL_JOB=<index>:<ms>[:once]: how long to sit on
 * job `index` while heartbeating idle. 0 = knob does not fire.
 */
std::uint64_t
stallKnobMs(std::uint64_t index, const std::string &shard_dir)
{
    const char *value = std::getenv("BINGO_DIST_TEST_STALL_JOB");
    if (value == nullptr || *value == '\0')
        return 0;
    char *end = nullptr;
    const unsigned long long target = std::strtoull(value, &end, 10);
    if (end == value || target != index || *end != ':')
        return 0;
    const char *ms_text = end + 1;
    const unsigned long long ms = std::strtoull(ms_text, &end, 10);
    if (end == ms_text || ms == 0)
        return 0;
    if (*end == '\0')
        return ms;
    if (std::strcmp(end, ":once") != 0)
        return 0;
    return claimOnce(markerDir(shard_dir), "stall", index) ? ms : 0;
}

} // namespace

int
workerMain(std::unique_ptr<ByteChannel> channel,
           const std::string &shard_dir, unsigned slot,
           std::uint64_t fault_epoch)
{
    // A foreground Ctrl-C signals the whole process group, workers
    // included. The coordinator owns drain policy — workers ignore
    // terminal signals so in-flight jobs finish and journal, and exit
    // via Shutdown frame or link EOF (the coordinator SIGKILLs
    // stragglers). A worker can never outlive its coordinator: EOF on
    // the transport is unfakeable. SIGPIPE is ignored so a coordinator
    // death during a frame write surfaces as a structured broken-pipe
    // transport error, not sudden worker death.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);

    const bool journal_locally = !shard_dir.empty();
    if (journal_locally) {
        std::error_code ec;
        std::filesystem::create_directories(shard_dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "bingo_worker: cannot create shard dir %s: %s\n",
                         shard_dir.c_str(), ec.message().c_str());
            return 1;
        }
    }

    FramedLink link(std::move(channel));
    link.enableFaults(chaos::transportChaosFromEnv(), LinkRole::Worker,
                      slot, fault_epoch);

    // The heartbeat thread and the job loop share the link; frames
    // must not interleave.
    std::mutex send_mutex;
    const auto send = [&](MsgType type, const std::string &payload) {
        std::lock_guard<std::mutex> lock(send_mutex);
        return link.send(type, payload);
    };

    WireHello hello;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    hello.slot = slot;
    if (!send(MsgType::Hello, encodeHello(hello)))
        return 1;

    std::atomic<bool> stop{false};
    std::atomic<bool> mute{false};  // Hang knob: simulate a wedged
                                    // worker by silencing heartbeats.
    std::atomic<bool> busy{false};
    std::atomic<std::uint64_t> busy_index{0};
    std::atomic<std::uint64_t> busy_lease{0};
    std::thread heartbeat([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            if (!mute.load(std::memory_order_relaxed)) {
                WireHeartbeat beat;
                beat.busy = busy.load(std::memory_order_relaxed);
                beat.index =
                    busy_index.load(std::memory_order_relaxed);
                beat.lease =
                    busy_lease.load(std::memory_order_relaxed);
                send(MsgType::Heartbeat, encodeHeartbeat(beat));
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
    });

    int exit_code = 0;
    Frame frame;
    for (;;) {
        if (!link.readBlocking(frame))
            break;  // Coordinator gone — never simulate orphaned.
        if (frame.type == MsgType::Shutdown) {
            send(MsgType::Bye, "");
            break;
        }
        if (frame.type != MsgType::Job)
            continue;

        WireJob wire;
        if (!decodeJob(frame.payload, wire)) {
            std::fprintf(stderr,
                         "bingo_worker[%u]: undecodable job frame\n",
                         slot);
            exit_code = 2;
            break;
        }

        // Stall knob: sit on the job while heartbeats still say idle,
        // as if the Job frame were stuck in a transit queue. The
        // coordinator revokes the lease and re-dispatches; this worker
        // then runs the job anyway and its late result must be dropped
        // as stale — the at-most-once-commit test.
        if (const std::uint64_t stall_ms =
                stallKnobMs(wire.index, shard_dir);
            stall_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall_ms));
        }

        busy_index.store(wire.index, std::memory_order_relaxed);
        busy_lease.store(wire.lease, std::memory_order_relaxed);
        busy.store(true, std::memory_order_relaxed);

        WireResult result;
        result.index = wire.index;
        result.lease = wire.lease;
        result.fingerprint = wire.fingerprint;

        // Drift guard: a config field missing from the wire format
        // yields a different fingerprint here than the coordinator
        // computed — fail the job loudly instead of silently
        // simulating the wrong machine.
        const std::string derived = jobFingerprint(wire.job);
        if (derived != wire.fingerprint) {
            result.status = JobStatus::Failed;
            result.error =
                "job fingerprint drift: coordinator sent " +
                wire.fingerprint + ", worker derived " + derived +
                " — wire serialization out of sync with SystemConfig";
            const bool sent =
                send(MsgType::Result, encodeResult(result));
            busy.store(false, std::memory_order_relaxed);
            if (!sent)
                break;
            continue;
        }

        if (knobFires("BINGO_DIST_TEST_CRASH_JOB", wire.index,
                      shard_dir, "crash")) {
            ::raise(SIGKILL);  // Indistinguishable from kill -9.
        }
        if (knobFires("BINGO_DIST_TEST_HANG_JOB", wire.index,
                      shard_dir, "hang")) {
            mute.store(true, std::memory_order_relaxed);
            for (;;)
                ::pause();  // Until the coordinator loses patience.
        }

        const std::uint64_t runs_before = completedRuns();
        const std::uint64_t cycles_before = simulatedCycles();
        RunResult run;
        const JobOutcome outcome =
            runSingleJob(wire.job, wire.index, run);
        result.status = outcome.status;
        result.attempts = outcome.attempts;
        result.wall_seconds = outcome.wall_seconds;
        result.error = outcome.error;
        result.runs = completedRuns() - runs_before;
        result.cycles = simulatedCycles() - cycles_before;
        if (outcome.ok()) {
            result.record = journalEncode(wire.fingerprint, run);
            if (!wire.baseline && journal_locally) {
                try {
                    journalStore(shard_dir, wire.fingerprint, run);
                } catch (const std::exception &e) {
                    std::fprintf(stderr, "bingo_worker[%u]: %s\n",
                                 slot, e.what());
                }
            }
        }
        const bool sent = send(MsgType::Result, encodeResult(result));
        busy.store(false, std::memory_order_relaxed);
        if (!sent)
            break;
    }

    stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    return exit_code;
}

} // namespace dist
} // namespace bingo
