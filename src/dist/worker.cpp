#include "dist/worker.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "dist/protocol.hpp"
#include "sim/experiment.hpp"
#include "sim/journal.hpp"

namespace bingo
{
namespace dist
{

namespace
{

/**
 * Directory for the `:once` knob marker files — shared by every worker
 * of the sweep so the knob fires in exactly one process.
 * BINGO_DIST_TEST_DIR when set (tests that byte-compare journal
 * directories must keep markers out of the journal tree), otherwise
 * the shards root.
 */
std::string
markerDir(const std::string &shard_dir)
{
    if (const char *env = std::getenv("BINGO_DIST_TEST_DIR");
        env != nullptr && *env != '\0')
        return env;
    return std::filesystem::path(shard_dir).parent_path().string();
}

/**
 * Whether the `env_name` fault knob targets sweep job `index`. With
 * the `:once` suffix, an O_CREAT|O_EXCL marker file makes only the
 * first worker (and first dispatch) to draw the job fire; respawned
 * workers simulate it normally, modelling a transient crash instead of
 * a poison job.
 */
bool
knobFires(const char *env_name, std::uint64_t index,
          const std::string &shard_dir, const char *tag)
{
    const char *value = std::getenv(env_name);
    if (value == nullptr || *value == '\0')
        return false;
    char *end = nullptr;
    const unsigned long long target = std::strtoull(value, &end, 10);
    if (end == value || target != index)
        return false;
    if (*end == '\0')
        return true;
    if (std::strcmp(end, ":once") != 0)
        return false;
    const std::string dir = markerDir(shard_dir);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string marker = dir + "/" + tag + "." +
                               std::to_string(index) + ".fired";
    const int fd =
        ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;  // Already fired in some worker.
    ::close(fd);
    return true;
}

} // namespace

int
workerMain(int socket_fd, const std::string &shard_dir, unsigned slot)
{
    // A foreground Ctrl-C signals the whole process group, workers
    // included. The coordinator owns drain policy — workers ignore
    // terminal signals so in-flight jobs finish and journal, and exit
    // via Shutdown frame or socket EOF (the coordinator SIGKILLs
    // stragglers). A worker can never outlive its coordinator: EOF on
    // the socketpair is unfakeable.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);

    std::error_code ec;
    std::filesystem::create_directories(shard_dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "bingo_worker: cannot create shard dir %s: %s\n",
                     shard_dir.c_str(), ec.message().c_str());
        return 1;
    }

    // The heartbeat thread and the job loop share the socket; frames
    // must not interleave.
    std::mutex send_mutex;
    const auto send = [&](MsgType type, const std::string &payload) {
        std::lock_guard<std::mutex> lock(send_mutex);
        return sendFrame(socket_fd, type, payload);
    };

    WireHello hello;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    hello.slot = slot;
    if (!send(MsgType::Hello, encodeHello(hello)))
        return 1;

    std::atomic<bool> stop{false};
    std::atomic<bool> mute{false};  // Hang knob: simulate a wedged
                                    // worker by silencing heartbeats.
    std::thread heartbeat([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            if (!mute.load(std::memory_order_relaxed))
                send(MsgType::Heartbeat, "");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
    });

    int exit_code = 0;
    FrameReader reader(socket_fd);
    Frame frame;
    for (;;) {
        if (!reader.readBlocking(frame))
            break;  // Coordinator gone — never simulate orphaned.
        if (frame.type == MsgType::Shutdown) {
            send(MsgType::Bye, "");
            break;
        }
        if (frame.type != MsgType::Job)
            continue;

        WireJob wire;
        if (!decodeJob(frame.payload, wire)) {
            std::fprintf(stderr,
                         "bingo_worker[%u]: undecodable job frame\n",
                         slot);
            exit_code = 2;
            break;
        }
        WireResult result;
        result.index = wire.index;
        result.fingerprint = wire.fingerprint;

        // Drift guard: a config field missing from the wire format
        // yields a different fingerprint here than the coordinator
        // computed — fail the job loudly instead of silently
        // simulating the wrong machine.
        const std::string derived = jobFingerprint(wire.job);
        if (derived != wire.fingerprint) {
            result.status = JobStatus::Failed;
            result.error =
                "job fingerprint drift: coordinator sent " +
                wire.fingerprint + ", worker derived " + derived +
                " — wire serialization out of sync with SystemConfig";
            if (!send(MsgType::Result, encodeResult(result)))
                break;
            continue;
        }

        if (knobFires("BINGO_DIST_TEST_CRASH_JOB", wire.index,
                      shard_dir, "crash")) {
            ::raise(SIGKILL);  // Indistinguishable from kill -9.
        }
        if (knobFires("BINGO_DIST_TEST_HANG_JOB", wire.index,
                      shard_dir, "hang")) {
            mute.store(true, std::memory_order_relaxed);
            for (;;)
                ::pause();  // Until the coordinator loses patience.
        }

        const std::uint64_t runs_before = completedRuns();
        const std::uint64_t cycles_before = simulatedCycles();
        RunResult run;
        const JobOutcome outcome =
            runSingleJob(wire.job, wire.index, run);
        result.status = outcome.status;
        result.attempts = outcome.attempts;
        result.wall_seconds = outcome.wall_seconds;
        result.error = outcome.error;
        result.runs = completedRuns() - runs_before;
        result.cycles = simulatedCycles() - cycles_before;
        if (outcome.ok()) {
            result.record = journalEncode(wire.fingerprint, run);
            if (!wire.baseline) {
                try {
                    journalStore(shard_dir, wire.fingerprint, run);
                } catch (const std::exception &e) {
                    std::fprintf(stderr, "bingo_worker[%u]: %s\n",
                                 slot, e.what());
                }
            }
        }
        if (!send(MsgType::Result, encodeResult(result)))
            break;
    }

    stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    return exit_code;
}

} // namespace dist
} // namespace bingo
