/**
 * @file
 * Distributed sweep coordinator: shards a sweep's pending jobs across
 * supervised bingo_worker OS processes (src/dist/worker.hpp) and
 * collects structured JobOutcomes, with the same journal semantics —
 * byte-identical — as the in-process runner.
 *
 * Entered transparently from runSweepOutcomes when BINGO_DIST_WORKERS
 * is nonzero (experiment.cpp gates out callers that pin a thread count
 * or install a fault hook). The coordinator:
 *  - fork/execs N workers, each journaling into its own shard
 *    directory `<journal>/shards/w<slot>/` (a temp directory when
 *    journaling is off);
 *  - streams jobs over the socketpair protocol (dist/protocol.hpp) and
 *    supervises with heartbeats (BINGO_DIST_HEARTBEAT_S, default 5 s
 *    of silence = dead) and a hard per-job deadline
 *    (BINGO_DIST_JOB_TIMEOUT_S = SIGKILL backstop; the inherited
 *    BINGO_JOB_TIMEOUT_S in-worker watchdog should fire first and fail
 *    the job gracefully — a wedged job that still heartbeats is only
 *    caught by the hard deadline);
 *  - re-dispatches a dead/hung worker's in-flight job to survivors
 *    after a deterministic retryBackoffMs delay, and respawns the lost
 *    slot (up to BINGO_DIST_MAX_RESPAWNS times, backed off likewise);
 *  - quarantines a job that kills BINGO_DIST_POISON_KILLS consecutive
 *    workers (default 2) as a poison job: reported Failed with a
 *    poison error, the sweep continues — degraded, not dead;
 *  - drains gracefully on SIGINT/SIGTERM: no new dispatches, in-flight
 *    jobs finish and journal, undispatched jobs report "sweep
 *    interrupted" so the sweep resumes from the journal;
 *  - falls back to in-process execution of whatever remains if every
 *    worker slot is exhausted — a sweep never dies just because its
 *    workers did;
 *  - merges worker shards into the canonical journal at the end
 *    (journalMergeShards), which is byte-identical to a single-process
 *    run of the same jobs because journalEncode is the only record
 *    serializer and simulations are deterministic.
 */

#ifndef BINGO_DIST_COORDINATOR_HPP
#define BINGO_DIST_COORDINATOR_HPP

#include <cstddef>
#include <vector>

#include "sim/experiment.hpp"

namespace bingo
{
namespace dist
{

/** What supervision had to do during a distributed sweep (for tests
 *  and the end-of-sweep summary line). */
struct DistReport
{
    unsigned workers_spawned = 0;   ///< fork/execs, including respawns.
    unsigned workers_lost = 0;      ///< Deaths observed (crash, hang
                                    ///< kill, deadline kill).
    std::size_t redispatched = 0;   ///< In-flight jobs requeued after a
                                    ///< worker death.
    std::size_t poisoned = 0;       ///< Jobs quarantined as poison.
    std::size_t fallback_jobs = 0;  ///< Jobs run in-process after all
                                    ///< worker slots were exhausted.
};

/**
 * Run jobs[pending...] across worker processes, filling
 * outcomes[i] for each pending i (other entries are untouched — the
 * caller already resolved them from the journal). Baselines requested
 * via compare_baseline are dispatched as explicit worker jobs and
 * primed into this process's baseline cache. `num_workers` 0 means
 * sweepDistWorkers().
 *
 * Returns false — with outcomes untouched — when the bingo_worker
 * binary cannot be located ($BINGO_WORKER_BIN or next to the current
 * executable); the caller then runs in-process as if distribution were
 * never requested. Throws only on journal-merge conflicts, which mean
 * nondeterminism and must never be papered over.
 */
bool runSweepDistributed(const std::vector<SweepJob> &jobs,
                         const std::vector<std::size_t> &pending,
                         std::vector<JobOutcome> &outcomes,
                         unsigned num_workers = 0,
                         DistReport *report = nullptr);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_COORDINATOR_HPP
