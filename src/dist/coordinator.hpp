/**
 * @file
 * Distributed sweep coordinator: shards a sweep's pending jobs across
 * supervised bingo_worker OS processes (src/dist/worker.hpp) and
 * collects structured JobOutcomes, with the same journal semantics —
 * byte-identical — as the in-process runner.
 *
 * Entered transparently from runSweepOutcomes when BINGO_DIST_WORKERS
 * is nonzero or BINGO_DIST_HOSTS is set (experiment.cpp gates out
 * callers that pin a thread count or install a fault hook). The
 * coordinator:
 *  - fork/execs N local workers over socketpairs, each journaling into
 *    its own shard directory `<journal>/shards/w<slot>/` (a temp
 *    directory when journaling is off), and/or launches remote workers
 *    through BINGO_DIST_HOSTS command templates with their stdio as
 *    the transport (slots cycle over the host list). Remote workers
 *    may not share a filesystem, so the coordinator appends their
 *    accepted result records to `<journal>/shards/coordinator.log`
 *    and journalMergeShards folds that log in with the shards;
 *  - streams jobs over the FramedLink protocol (dist/transport.hpp:
 *    CRC-checked, sequence-numbered frames with resynchronization,
 *    duplicate suppression, and the `transport` chaos site's
 *    deterministic fault injection) and supervises with heartbeats
 *    (BINGO_DIST_HEARTBEAT_S, default 5 s of silence = dead) and a
 *    hard per-job deadline (BINGO_DIST_JOB_TIMEOUT_S = SIGKILL
 *    backstop; the inherited BINGO_JOB_TIMEOUT_S in-worker watchdog
 *    should fire first and fail the job gracefully);
 *  - guards every dispatch with a lease token: each (re-)dispatch of
 *    an item bumps its lease, the worker echoes the lease in its
 *    result, and a result whose lease is not the item's current one is
 *    dropped as stale. Combined with the journal's conflict-checked
 *    merge this makes job commits at-most-once even when a stalled
 *    worker resurfaces after its job was re-dispatched;
 *  - detects *lost* Job/Result frames (not just dead workers) by
 *    reconciling heartbeats: a worker that reports idle while the
 *    coordinator believes it busy for longer than
 *    BINGO_DIST_REDISPATCH_S (default 2 s) has its lease revoked and
 *    the job requeued with the deterministic retryBackoffMs delay;
 *  - re-dispatches a dead/hung worker's in-flight job to survivors and
 *    respawns the lost slot (up to BINGO_DIST_MAX_RESPAWNS times,
 *    backed off likewise; each respawn re-seeds the slot's transport
 *    fault stream so a deterministic first-frame fault cannot repeat
 *    forever);
 *  - quarantines a job that kills BINGO_DIST_POISON_KILLS consecutive
 *    workers (default 2) as a poison job: reported Failed with a
 *    poison error, the sweep continues — degraded, not dead;
 *  - drains gracefully on SIGINT/SIGTERM (and ignores SIGPIPE for the
 *    duration, so a worker dying mid-write surfaces as a structured
 *    transport error): no new dispatches, in-flight jobs finish and
 *    journal, undispatched jobs report "sweep interrupted" so the
 *    sweep resumes from the journal;
 *  - falls back to in-process execution of whatever remains if every
 *    worker slot is exhausted — a sweep never dies just because its
 *    workers did;
 *  - merges worker shards (and the coordinator log) into the canonical
 *    journal at the end (journalMergeShards), which is byte-identical
 *    to a single-process run of the same jobs because journalEncode is
 *    the only record serializer and simulations are deterministic; and
 *  - writes the transport-health counters (reconnects, corrupt frames
 *    dropped, duplicates suppressed, sequence gaps, leases revoked,
 *    stale results dropped) to `transport_health.json` in
 *    BINGO_TELEMETRY_DIR (or the working directory) — never into the
 *    journal, whose contents must stay a pure function of the job
 *    list.
 */

#ifndef BINGO_DIST_COORDINATOR_HPP
#define BINGO_DIST_COORDINATOR_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/experiment.hpp"

namespace bingo
{
namespace dist
{

/** What supervision — and the transport robustness layer underneath
 *  it — had to do during a distributed sweep (for tests, the
 *  end-of-sweep summary line, and transport_health.json). */
struct DistReport
{
    unsigned workers_spawned = 0;   ///< fork/execs, including respawns.
    unsigned workers_lost = 0;      ///< Deaths observed (crash, hang
                                    ///< kill, deadline kill).
    std::size_t redispatched = 0;   ///< Jobs requeued (worker death or
                                    ///< lease revocation).
    std::size_t poisoned = 0;       ///< Jobs quarantined as poison.
    std::size_t fallback_jobs = 0;  ///< Jobs run in-process after all
                                    ///< worker slots were exhausted.

    // Transport health (satellite counters; aggregated from every
    // worker link's LinkStats plus the coordinator's own bookkeeping).
    std::uint64_t reconnects = 0;   ///< Respawns of a previously-live
                                    ///< slot (link re-established).
    std::uint64_t corrupt_frames_dropped = 0;  ///< CRC/parse resyncs.
    std::uint64_t duplicate_frames_suppressed = 0;
    std::uint64_t frame_gaps = 0;   ///< Sequence holes (lost frames).
    std::uint64_t injected_faults = 0;  ///< Chaos draws that fired.
    std::uint64_t leases_revoked = 0;   ///< Idle-heartbeat revocations.
    std::uint64_t stale_results_dropped = 0;  ///< Results with an
                                    ///< outdated lease (not committed).
    std::uint64_t log_records = 0;  ///< Records appended to
                                    ///< shards/coordinator.log for
                                    ///< non-journaling workers.
};

/**
 * Run jobs[pending...] across worker processes, filling
 * outcomes[i] for each pending i (other entries are untouched — the
 * caller already resolved them from the journal). Baselines requested
 * via compare_baseline are dispatched as explicit worker jobs, primed
 * into this process's baseline cache, and journaled into the canonical
 * directory (matching the in-process baselineFor). `num_workers` 0
 * means sweepDistWorkers(), or the BINGO_DIST_HOSTS host count when
 * that is the only configuration given.
 *
 * Returns false — with outcomes untouched — when no workers can be
 * launched (no BINGO_DIST_HOSTS and the bingo_worker binary cannot be
 * located via $BINGO_WORKER_BIN or next to the current executable);
 * the caller then runs in-process as if distribution were never
 * requested. Throws only on journal-merge conflicts, which mean
 * nondeterminism and must never be papered over.
 */
bool runSweepDistributed(const std::vector<SweepJob> &jobs,
                         const std::vector<std::size_t> &pending,
                         std::vector<JobOutcome> &outcomes,
                         unsigned num_workers = 0,
                         DistReport *report = nullptr);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_COORDINATOR_HPP
