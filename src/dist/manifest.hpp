/**
 * @file
 * SweepManifest: a sweep described as data, so a sweep survives its
 * coordinator.
 *
 * runSweepOutcomes writes `<journal>/manifest.sweep` (atomically)
 * before running a journaled sweep. The manifest is a pure function of
 * the job list — it embeds no paths, timestamps or host state — so a
 * single-process run and a distributed run of the same sweep produce
 * byte-identical manifests and the journal-tree diff oracle still
 * holds. If the coordinator is kill -9'd mid-sweep, rerunning the
 * original driver *or* `bingo_worker --sweep <journal>/manifest.sweep`
 * resumes from whatever the journal already holds: journaled jobs are
 * skipped, everything else re-runs, and the final journal is
 * byte-identical to an uninterrupted run.
 *
 * Job entries reuse the wire codec (dist/protocol.hpp encodeJob), so
 * the manifest is drift-guarded by the same serialization the worker
 * fingerprint check exercises. Fingerprints embedded in the entries
 * are advisory — they are re-derived at load time, because the
 * environment (BINGO_CHAOS simulation sites) legitimately changes what
 * a job's fingerprint is.
 */

#ifndef BINGO_DIST_MANIFEST_HPP
#define BINGO_DIST_MANIFEST_HPP

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace bingo
{
namespace dist
{

/** Serialize a job list into manifest bytes (deterministic). */
std::string encodeManifest(const std::vector<SweepJob> &jobs);

/** Parse manifest bytes; false on truncation/garbling/version drift. */
bool decodeManifest(const std::string &text,
                    std::vector<SweepJob> &out);

/** `<journal_dir>/manifest.sweep`. */
std::string manifestPath(const std::string &journal_dir);

/**
 * Atomically write the manifest for `jobs` into `journal_dir`
 * (creating it as needed). Failures warn to stderr instead of
 * throwing: a sweep without a manifest is still a correct sweep, just
 * not coordinator-crash-resumable.
 */
void manifestStore(const std::string &journal_dir,
                   const std::vector<SweepJob> &jobs);

/** Load `<journal_dir>/manifest.sweep`; false if absent/undecodable. */
bool manifestLoad(const std::string &journal_dir,
                  std::vector<SweepJob> &out);

/**
 * `bingo_worker --sweep <manifest>` entry point: run the manifest's
 * sweep with the journal directory set to the manifest's own directory
 * (resuming from any partial journal state, including a dead
 * coordinator's merged-on-open shards). Honors BINGO_DIST_WORKERS /
 * BINGO_DIST_HOSTS like any other sweep driver. Returns the process
 * exit code: 0 when every job completed Ok/Degraded/Skipped, 1 when
 * any failed, 64 when the manifest cannot be read.
 */
int runManifestSweep(const std::string &manifest_path);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_MANIFEST_HPP
