/**
 * @file
 * Worker-process mechanics for the distributed sweep runner: locating
 * the bingo_worker binary, spawning it over a socketpair, and the
 * per-worker supervision state the coordinator tracks (liveness,
 * heartbeats, the in-flight job, respawn counts).
 *
 * Policy — who to kill when, what counts as poison, how often to
 * respawn — lives in coordinator.cpp; this file is the mechanism.
 */

#ifndef BINGO_DIST_SUPERVISOR_HPP
#define BINGO_DIST_SUPERVISOR_HPP

#include <chrono>
#include <cstddef>
#include <string>

#include <sys/types.h>

#include "dist/protocol.hpp"

namespace bingo
{
namespace dist
{

/**
 * Path of the bingo_worker binary: $BINGO_WORKER_BIN if set, else a
 * few locations relative to the running executable (same directory,
 * sibling src/ directory — covering the build-tree layouts of the
 * benches, tests and examples). Empty string when none exists, which
 * makes the coordinator decline distribution and the sweep fall back
 * to the in-process runner.
 */
std::string workerBinaryPath();

/** Supervision state of one worker process. */
struct WorkerProc
{
    pid_t pid = -1;
    int fd = -1;                   ///< Coordinator end of the socketpair.
    unsigned slot = 0;             ///< Stable shard slot (w<slot>).
    unsigned spawn_count = 0;      ///< Spawns consumed for this slot.
    bool said_hello = false;
    FrameReader reader;

    /// Last frame (heartbeat or otherwise) received, for liveness.
    std::chrono::steady_clock::time_point last_heard{};
    /// When the in-flight job was dispatched (deadline base).
    std::chrono::steady_clock::time_point job_start{};
    /// Index into the sweep's job list, or npos when idle.
    std::size_t in_flight = static_cast<std::size_t>(-1);

    static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);

    bool alive() const { return pid > 0; }
    bool idle() const { return in_flight == kIdle; }
};

/**
 * Fork/exec one bingo_worker for `slot`, journaling into `shard_dir`.
 * The worker gets its end of a SOCK_STREAM socketpair as fd 3 and is
 * invoked as `bingo_worker --socket-fd 3 --shard-dir <dir> --slot <n>`.
 * On success fills pid/fd (coordinator end, set non-blocking) and
 * resets the reader/liveness clocks. Returns false (worker marked
 * dead) when the socketpair or fork fails.
 */
bool spawnWorker(const std::string &binary, const std::string &shard_dir,
                 unsigned slot, WorkerProc &out);

/**
 * SIGKILL + reap `worker` (blocking waitpid) and close its fd. Safe on
 * an already-dead worker. Leaves pid/fd at -1. This is the single
 * teardown path; worker death is *detected* by the coordinator through
 * FrameReader EOF (which flushes any buffered final frames first) or a
 * heartbeat/deadline expiry, never by closing the fd early — a dead
 * worker's socket may still hold its last `result`.
 */
void killWorker(WorkerProc &worker);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_SUPERVISOR_HPP
