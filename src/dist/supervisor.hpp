/**
 * @file
 * Worker-process mechanics for the distributed sweep runner: locating
 * the bingo_worker binary, spawning it over a socketpair or through an
 * ssh-style command template (stdio transport), and the per-worker
 * supervision state the coordinator tracks (liveness, heartbeats, the
 * in-flight job, respawn counts).
 *
 * Policy — who to kill when, what counts as poison, how often to
 * respawn — lives in coordinator.cpp; this file is the mechanism.
 */

#ifndef BINGO_DIST_SUPERVISOR_HPP
#define BINGO_DIST_SUPERVISOR_HPP

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "dist/protocol.hpp"
#include "dist/transport.hpp"

namespace bingo
{
namespace dist
{

/**
 * Path of the bingo_worker binary: $BINGO_WORKER_BIN if set, else a
 * few locations relative to the running executable (same directory,
 * sibling src/ directory — covering the build-tree layouts of the
 * benches, tests and examples). Empty string when none exists, which
 * makes the coordinator decline distribution and the sweep fall back
 * to the in-process runner (unless BINGO_DIST_HOSTS provides remote
 * workers, which need no local binary).
 */
std::string workerBinaryPath();

/**
 * Worker-launch command templates from BINGO_DIST_HOSTS: a
 * ';'-separated list of shell commands, each launching one
 * `bingo_worker --stdio` (typically through ssh). The coordinator
 * appends ` --stdio --slot <n> --fault-epoch <e>` and runs the result
 * via `/bin/sh -c` with the worker's stdin/stdout as the transport.
 * Empty entries are dropped; unset/empty env yields an empty list.
 */
std::vector<std::string> sweepDistHosts();

/** Supervision state of one worker process. */
struct WorkerProc
{
    pid_t pid = -1;
    unsigned slot = 0;             ///< Stable shard slot (w<slot>).
    unsigned spawn_count = 0;      ///< Spawns consumed for this slot.
    bool said_hello = false;
    /// Worker journals into a shard dir the coordinator can merge
    /// (socketpair workers). Command/stdio workers may run on another
    /// machine: the coordinator appends their accepted results to its
    /// own shard log instead.
    bool journals_locally = true;
    /// Worker's last self-reported state (heartbeat), plus an
    /// optimistic set on dispatch. A worker that claims idle while the
    /// coordinator believes it busy is how lost Job/Result frames are
    /// detected (lease revocation).
    bool busy_hint = false;
    std::unique_ptr<FramedLink> link;

    /// Last frame (heartbeat or otherwise) received, for liveness.
    std::chrono::steady_clock::time_point last_heard{};
    /// When the in-flight job was dispatched (deadline base).
    std::chrono::steady_clock::time_point job_start{};
    /// Index into the sweep's item list, or npos when idle.
    std::size_t in_flight = static_cast<std::size_t>(-1);

    static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);

    bool alive() const { return pid > 0; }
    bool idle() const { return in_flight == kIdle; }
};

/**
 * Fork/exec one bingo_worker for `slot`, journaling into `shard_dir`.
 * The worker gets its end of a SOCK_STREAM socketpair as fd 3 and is
 * invoked as `bingo_worker --socket-fd 3 --shard-dir <dir> --slot <n>
 * --fault-epoch <spawn>`. On success fills pid and a SocketChannel
 * FramedLink (coordinator end non-blocking) and resets the
 * liveness clocks. Returns false (worker marked dead) when the
 * socketpair or fork fails.
 */
bool spawnWorker(const std::string &binary, const std::string &shard_dir,
                 unsigned slot, WorkerProc &out);

/**
 * Launch one worker through a BINGO_DIST_HOSTS command template:
 * `/bin/sh -c "<command> --stdio --slot <n> --fault-epoch <e>"` with
 * stdin/stdout piped to the coordinator (PipeChannel FramedLink; the
 * worker's own stdout chatter is rerouted to stderr on its side).
 * Returns false when the pipes or fork fail.
 */
bool spawnWorkerCommand(const std::string &command, unsigned slot,
                        WorkerProc &out);

/**
 * SIGKILL + reap `worker` (blocking waitpid) and close its link. Safe
 * on an already-dead worker. Leaves pid at -1. This is the single
 * teardown path; worker death is *detected* by the coordinator through
 * link EOF (which flushes any buffered final frames first) or a
 * heartbeat/deadline expiry, never by closing the link early — a dead
 * worker's socket may still hold its last `result`.
 */
void killWorker(WorkerProc &worker);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_SUPERVISOR_HPP
