/**
 * @file
 * bingo_worker process body: receive serialized SweepJobs from the
 * coordinator over the protocol socket, simulate them with the same
 * runSingleJob() kernel the in-process runner uses, journal each
 * completed job into this worker's own shard directory, and stream the
 * outcomes (including the exact journal-record bytes) back.
 *
 * Liveness: a dedicated heartbeat thread sends a frame every ~200 ms
 * even while a simulation runs, so the coordinator can tell "slow job"
 * from "hung worker". EOF on the socket means the coordinator died;
 * the worker exits instead of simulating orphaned.
 *
 * Test knobs (used by the crash-tolerance tests and the CI smoke job
 * to produce real worker deaths, equivalent to an external kill -9):
 *  - BINGO_DIST_TEST_CRASH_JOB=<index>[:once] — SIGKILL self when
 *    dispatched sweep job <index>.
 *  - BINGO_DIST_TEST_HANG_JOB=<index>[:once] — stop heartbeating and
 *    sleep forever when dispatched sweep job <index>.
 * With `:once` the knob fires only in the first worker process to draw
 * the job (a marker file next to the shards makes respawned workers
 * and re-dispatches proceed normally), turning "poison job" into
 * "transient crash".
 */

#ifndef BINGO_DIST_WORKER_HPP
#define BINGO_DIST_WORKER_HPP

#include <string>

namespace bingo
{
namespace dist
{

/**
 * Run the worker protocol loop on `socket_fd` (blocking), journaling
 * into `shard_dir` as worker `slot`. Returns the process exit code:
 * 0 after a clean Shutdown/EOF drain, nonzero on protocol errors.
 */
int workerMain(int socket_fd, const std::string &shard_dir,
               unsigned slot);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_WORKER_HPP
