/**
 * @file
 * bingo_worker process body: receive serialized SweepJobs from the
 * coordinator over a FramedLink (socketpair or stdio transport),
 * simulate them with the same runSingleJob() kernel the in-process
 * runner uses, journal each completed job into this worker's own shard
 * directory (when it has one — stdio workers may not share a
 * filesystem with the coordinator), and stream the outcomes (including
 * the exact journal-record bytes and the job's lease token) back.
 *
 * Liveness: a dedicated heartbeat thread sends a frame every ~200 ms
 * even while a simulation runs — carrying the worker's busy/idle state
 * and the in-flight job's (index, lease) — so the coordinator can tell
 * "slow job" from "hung worker" from "job frame lost in transit".
 * EOF on the link means the coordinator died; the worker exits instead
 * of simulating orphaned.
 *
 * Test knobs (used by the crash-tolerance tests and the CI smoke job
 * to produce real worker deaths, equivalent to an external kill -9):
 *  - BINGO_DIST_TEST_CRASH_JOB=<index>[:once] — SIGKILL self when
 *    dispatched sweep job <index>.
 *  - BINGO_DIST_TEST_HANG_JOB=<index>[:once] — stop heartbeating and
 *    sleep forever when dispatched sweep job <index>.
 *  - BINGO_DIST_TEST_STALL_JOB=<index>:<ms>[:once] — sit on the job
 *    for <ms> milliseconds while heartbeating *idle* (modelling a Job
 *    frame stuck in a queue), then run it normally. The coordinator
 *    revokes the lease and re-dispatches; the stalled worker's late
 *    result must be dropped as stale — the lease-guard test.
 * With `:once` the knob fires only in the first worker process to draw
 * the job (a marker file next to the shards makes respawned workers
 * and re-dispatches proceed normally), turning "poison job" into
 * "transient crash".
 */

#ifndef BINGO_DIST_WORKER_HPP
#define BINGO_DIST_WORKER_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "dist/transport.hpp"

namespace bingo
{
namespace dist
{

/**
 * Run the worker protocol loop over `channel` (blocking), journaling
 * into `shard_dir` as worker `slot` — an empty `shard_dir` disables
 * local journaling (stdio/remote workers; the coordinator logs their
 * results instead). `fault_epoch` seeds this process's transport-chaos
 * stream so respawns do not replay their predecessor's faults. Returns
 * the process exit code: 0 after a clean Shutdown/EOF drain, nonzero
 * on protocol errors.
 */
int workerMain(std::unique_ptr<ByteChannel> channel,
               const std::string &shard_dir, unsigned slot,
               std::uint64_t fault_epoch);

} // namespace dist
} // namespace bingo

#endif // BINGO_DIST_WORKER_HPP
