#include "dist/protocol.hpp"

#include <bit>
#include <sstream>

#include "sim/journal.hpp"

namespace bingo
{
namespace dist
{

namespace
{

constexpr std::size_t kMaxString = 1u * 1024u * 1024u;

std::uint64_t
doubleBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

double
doubleFromBits(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** Expect `keyword` as the next token; false on anything else. */
bool
expect(std::istream &in, const char *keyword)
{
    std::string token;
    return static_cast<bool>(in >> token) && token == keyword;
}

/** Length-prefixed string: `<len> <bytes>`. */
void
putString(std::ostream &out, const std::string &value)
{
    out << value.size() << ' ' << value;
}

bool
getString(std::istream &in, std::string &out)
{
    std::size_t length = 0;
    if (!(in >> length) || length > kMaxString || in.get() != ' ')
        return false;
    out.resize(length);
    return static_cast<bool>(
        in.read(out.data(), static_cast<std::streamsize>(length)));
}

} // namespace

std::string
encodeJob(const WireJob &wire)
{
    const SystemConfig &cfg = wire.job.config;
    const PrefetcherConfig &pf = cfg.prefetcher;
    std::ostringstream out;
    out << "job 2\n";
    out << "index " << wire.index << '\n';
    out << "lease " << wire.lease << '\n';
    out << "fingerprint " << wire.fingerprint << '\n';
    out << "workload ";
    putString(out, wire.job.workload);
    out << '\n';
    out << "options " << wire.job.options.warmup_instructions << ' '
        << wire.job.options.measure_instructions << ' '
        << wire.job.options.seed << ' '
        << (wire.job.compare_baseline ? 1 : 0) << '\n';
    out << "baseline " << (wire.baseline ? 1 : 0) << '\n';
    out << "system " << cfg.num_cores << ' '
        << doubleBits(cfg.frequency_ghz) << ' ' << cfg.seed << '\n';
    out << "core " << cfg.core.width << ' ' << cfg.core.rob_entries
        << ' ' << cfg.core.lsq_entries << ' ' << cfg.core.alu_latency
        << '\n';
    for (const auto &[label, cache] :
         {std::pair<const char *, const CacheConfig &>{"l1d", cfg.l1d},
          {"llc", cfg.llc}}) {
        out << label << ' ' << cache.size_bytes << ' ' << cache.ways
            << ' ' << cache.hit_latency << ' ' << cache.mshr_entries
            << ' ' << cache.prefetch_queue << ' '
            << static_cast<unsigned>(cache.replacement) << '\n';
    }
    out << "dram " << cfg.dram.channels << ' '
        << cfg.dram.banks_per_channel << ' ' << cfg.dram.row_size_bytes
        << ' ' << cfg.dram.controller_latency << ' ' << cfg.dram.t_cas
        << ' ' << cfg.dram.t_rcd << ' ' << cfg.dram.t_rp << ' '
        << cfg.dram.data_transfer << ' ' << cfg.dram.read_queue_entries
        << '\n';
    out << "pf " << static_cast<unsigned>(pf.kind) << ' '
        << pf.region_blocks << ' ' << pf.pht_entries << ' '
        << pf.pht_ways << ' ' << pf.accumulation_entries << ' '
        << pf.filter_entries << ' ' << doubleBits(pf.vote_threshold)
        << ' ' << pf.bop_rr_entries << ' ' << pf.bop_score_max << ' '
        << pf.bop_round_max << ' ' << pf.bop_bad_score << ' '
        << pf.bop_degree << ' ' << pf.spp_signature_entries << ' '
        << pf.spp_pattern_entries << ' ' << pf.spp_filter_entries
        << ' ' << doubleBits(pf.spp_confidence_threshold) << ' '
        << pf.spp_max_depth << ' ' << pf.vldp_dhb_entries << ' '
        << pf.vldp_opt_entries << ' ' << pf.vldp_dpt_entries << ' '
        << pf.vldp_degree << ' ' << pf.ampm_map_entries << ' '
        << pf.ampm_degree << ' ' << pf.stride_table_entries << ' '
        << pf.stride_degree << ' ' << pf.num_events << '\n';
    out << "temporal " << pf.isb_training_entries << ' '
        << pf.isb_mapping_entries << ' ' << pf.isb_degree << ' '
        << pf.domino_table_entries << ' ' << pf.domino_degree << ' '
        << pf.temporal_filter_entries << ' ' << pf.temporal_filter_bits
        << ' ' << pf.temporal_filter_threshold << ' '
        << pf.hybrid_pc_entries << ' ' << pf.hybrid_tracker_entries
        << ' ' << pf.hybrid_counter_bits << ' '
        << pf.hybrid_issue_budget << ' ' << pf.hybrid_engines.size();
    for (PrefetcherKind engine : pf.hybrid_engines)
        out << ' ' << static_cast<unsigned>(engine);
    out << '\n';
    out << "chaos " << (cfg.chaos.enabled ? 1 : 0) << ' '
        << cfg.chaos.seed << ' ' << doubleBits(cfg.chaos.rate) << ' '
        << cfg.chaos.site_mask << '\n';
    out << "end\n";
    return out.str();
}

bool
decodeJob(const std::string &payload, WireJob &out)
{
    std::istringstream in(payload);
    unsigned version = 0;
    if (!expect(in, "job") || !(in >> version) || version != 2)
        return false;

    WireJob wire;
    SystemConfig &cfg = wire.job.config;
    PrefetcherConfig &pf = cfg.prefetcher;
    if (!expect(in, "index") || !(in >> wire.index))
        return false;
    if (!expect(in, "lease") || !(in >> wire.lease))
        return false;
    if (!expect(in, "fingerprint") || !(in >> wire.fingerprint))
        return false;
    if (!expect(in, "workload") || !getString(in, wire.job.workload))
        return false;
    unsigned compare_baseline = 0;
    if (!expect(in, "options") ||
        !(in >> wire.job.options.warmup_instructions >>
          wire.job.options.measure_instructions >>
          wire.job.options.seed >> compare_baseline))
        return false;
    wire.job.compare_baseline = compare_baseline != 0;
    unsigned baseline = 0;
    if (!expect(in, "baseline") || !(in >> baseline))
        return false;
    wire.baseline = baseline != 0;

    std::uint64_t frequency_bits = 0;
    if (!expect(in, "system") ||
        !(in >> cfg.num_cores >> frequency_bits >> cfg.seed))
        return false;
    cfg.frequency_ghz = doubleFromBits(frequency_bits);
    if (!expect(in, "core") ||
        !(in >> cfg.core.width >> cfg.core.rob_entries >>
          cfg.core.lsq_entries >> cfg.core.alu_latency))
        return false;
    for (const auto &[label, cache] :
         {std::pair<const char *, CacheConfig &>{"l1d", cfg.l1d},
          {"llc", cfg.llc}}) {
        unsigned replacement = 0;
        if (!expect(in, label) ||
            !(in >> cache.size_bytes >> cache.ways >>
              cache.hit_latency >> cache.mshr_entries >>
              cache.prefetch_queue >> replacement) ||
            replacement > static_cast<unsigned>(ReplacementKind::Random))
            return false;
        cache.replacement = static_cast<ReplacementKind>(replacement);
    }
    if (!expect(in, "dram") ||
        !(in >> cfg.dram.channels >> cfg.dram.banks_per_channel >>
          cfg.dram.row_size_bytes >> cfg.dram.controller_latency >>
          cfg.dram.t_cas >> cfg.dram.t_rcd >> cfg.dram.t_rp >>
          cfg.dram.data_transfer >> cfg.dram.read_queue_entries))
        return false;

    unsigned kind = 0;
    std::uint64_t vote_bits = 0;
    std::uint64_t spp_conf_bits = 0;
    if (!expect(in, "pf") ||
        !(in >> kind >> pf.region_blocks >> pf.pht_entries >>
          pf.pht_ways >> pf.accumulation_entries >> pf.filter_entries >>
          vote_bits >> pf.bop_rr_entries >> pf.bop_score_max >>
          pf.bop_round_max >> pf.bop_bad_score >> pf.bop_degree >>
          pf.spp_signature_entries >> pf.spp_pattern_entries >>
          pf.spp_filter_entries >> spp_conf_bits >> pf.spp_max_depth >>
          pf.vldp_dhb_entries >> pf.vldp_opt_entries >>
          pf.vldp_dpt_entries >> pf.vldp_degree >> pf.ampm_map_entries >>
          pf.ampm_degree >> pf.stride_table_entries >>
          pf.stride_degree >> pf.num_events) ||
        kind > static_cast<unsigned>(PrefetcherKind::Hybrid))
        return false;
    pf.kind = static_cast<PrefetcherKind>(kind);
    pf.vote_threshold = doubleFromBits(vote_bits);
    pf.spp_confidence_threshold = doubleFromBits(spp_conf_bits);

    std::size_t n_engines = 0;
    if (!expect(in, "temporal") ||
        !(in >> pf.isb_training_entries >> pf.isb_mapping_entries >>
          pf.isb_degree >> pf.domino_table_entries >>
          pf.domino_degree >> pf.temporal_filter_entries >>
          pf.temporal_filter_bits >> pf.temporal_filter_threshold >>
          pf.hybrid_pc_entries >> pf.hybrid_tracker_entries >>
          pf.hybrid_counter_bits >> pf.hybrid_issue_budget >>
          n_engines) ||
        n_engines > 8)
        return false;
    pf.hybrid_engines.clear();
    for (std::size_t i = 0; i < n_engines; ++i) {
        unsigned engine = 0;
        if (!(in >> engine) ||
            engine > static_cast<unsigned>(PrefetcherKind::Hybrid))
            return false;
        pf.hybrid_engines.push_back(
            static_cast<PrefetcherKind>(engine));
    }

    unsigned chaos_enabled = 0;
    std::uint64_t rate_bits = 0;
    if (!expect(in, "chaos") ||
        !(in >> chaos_enabled >> cfg.chaos.seed >> rate_bits >>
          cfg.chaos.site_mask))
        return false;
    cfg.chaos.enabled = chaos_enabled != 0;
    cfg.chaos.rate = doubleFromBits(rate_bits);

    if (!expect(in, "end"))
        return false;
    out = std::move(wire);
    return true;
}

std::string
encodeResult(const WireResult &result)
{
    std::ostringstream out;
    out << "result 2\n";
    out << "index " << result.index << '\n';
    out << "lease " << result.lease << '\n';
    out << "status " << static_cast<unsigned>(result.status) << '\n';
    out << "attempts " << result.attempts << '\n';
    out << "wall " << doubleBits(result.wall_seconds) << '\n';
    out << "runs " << result.runs << '\n';
    out << "cycles " << result.cycles << '\n';
    out << "fingerprint " << result.fingerprint << '\n';
    out << "error ";
    putString(out, result.error);
    out << '\n';
    out << "record ";
    putString(out, result.record);
    out << '\n';
    out << "end\n";
    return out.str();
}

bool
decodeResult(const std::string &payload, WireResult &out)
{
    std::istringstream in(payload);
    unsigned version = 0;
    if (!expect(in, "result") || !(in >> version) || version != 2)
        return false;
    WireResult wire;
    unsigned status = 0;
    std::uint64_t wall_bits = 0;
    if (!expect(in, "index") || !(in >> wire.index))
        return false;
    if (!expect(in, "lease") || !(in >> wire.lease))
        return false;
    if (!expect(in, "status") || !(in >> status) ||
        status > static_cast<unsigned>(JobStatus::Failed))
        return false;
    wire.status = static_cast<JobStatus>(status);
    if (!expect(in, "attempts") || !(in >> wire.attempts))
        return false;
    if (!expect(in, "wall") || !(in >> wall_bits))
        return false;
    wire.wall_seconds = doubleFromBits(wall_bits);
    if (!expect(in, "runs") || !(in >> wire.runs))
        return false;
    if (!expect(in, "cycles") || !(in >> wire.cycles))
        return false;
    if (!expect(in, "fingerprint") || !(in >> wire.fingerprint))
        return false;
    if (!expect(in, "error") || !getString(in, wire.error))
        return false;
    if (!expect(in, "record") || !getString(in, wire.record))
        return false;
    if (!expect(in, "end"))
        return false;
    out = std::move(wire);
    return true;
}

std::string
encodeHello(const WireHello &hello)
{
    std::ostringstream out;
    out << "hello 1 " << hello.pid << ' ' << hello.slot << '\n';
    return out.str();
}

bool
decodeHello(const std::string &payload, WireHello &out)
{
    std::istringstream in(payload);
    unsigned version = 0;
    WireHello hello;
    if (!expect(in, "hello") || !(in >> version) || version != 1 ||
        !(in >> hello.pid >> hello.slot))
        return false;
    out = hello;
    return true;
}

std::string
encodeHeartbeat(const WireHeartbeat &beat)
{
    std::ostringstream out;
    out << "hb 1 " << (beat.busy ? 1 : 0) << ' ' << beat.index << ' '
        << beat.lease << '\n';
    return out.str();
}

bool
decodeHeartbeat(const std::string &payload, WireHeartbeat &out)
{
    std::istringstream in(payload);
    unsigned version = 0;
    unsigned busy = 0;
    WireHeartbeat beat;
    if (!expect(in, "hb") || !(in >> version) || version != 1 ||
        !(in >> busy >> beat.index >> beat.lease))
        return false;
    beat.busy = busy != 0;
    out = beat;
    return true;
}

} // namespace dist
} // namespace bingo
