#include "cache/completion.hpp"

#include "cache/cache.hpp"
// Header-only use of the core: the completion methods invoked below
// are defined inline in ooo_core.hpp, so this file adds no link
// dependency from the cache library to the core library.
#include "core/ooo_core.hpp"

namespace bingo
{

void
Completion::operator()(Cycle when) const
{
    switch (kind_) {
      case Kind::LoadFill:
        static_cast<OooCore *>(target_)->completeLoad(seq_, when);
        break;
      case Kind::StoreRelease:
        static_cast<OooCore *>(target_)->completeStore(when);
        break;
      case Kind::CacheFill:
        static_cast<Cache *>(target_)->handleFill(slot_, when);
        break;
      case Kind::Generic:
        (*fn_)(when);
        break;
      case Kind::None:
        break;
    }
}

} // namespace bingo
