#include "cache/cache.hpp"

#include <stdexcept>
#include <unordered_set>

#include "common/sim_check.hpp"
#include "common/simd.hpp"
#include "mem/dram.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/registry.hpp"

namespace bingo
{

Cache::Cache(std::string name, const CacheConfig &config,
             EventQueue &events, MemoryLower &lower)
    : name_(std::move(name)), config_(config), events_(events),
      lower_(lower), num_sets_(config.numSets()),
      blocks_(num_sets_ * config.ways),
      way_tags_(num_sets_ * config.ways, kNoTag),
      way_lru_(num_sets_ * config.ways, 0),
      way_rrpv_(num_sets_ * config.ways, 3),
      set_filled_(num_sets_, 0),
      mshrs_(config.mshr_entries, name_ + ".mshr")
{
    if (num_sets_ == 0 || (num_sets_ & (num_sets_ - 1)) != 0)
        throw std::invalid_argument(
            name_ + ": size_bytes/ways must give a nonzero "
                    "power-of-two number of sets (got " +
            std::to_string(num_sets_) + ")");
}

void
Cache::touchBlock(std::size_t way_index)
{
    way_lru_[way_index] = ++tick_;
    if (config_.replacement == ReplacementKind::Srrip)
        way_rrpv_[way_index] = 0;  // Near re-reference on a hit.
}

std::uint64_t
Cache::setOf(Addr block) const
{
    return blockNumber(block) & (num_sets_ - 1);
}

Cache::Block *
Cache::lookup(Addr block)
{
    // Resident tags are unique per set and kNoTag never matches a
    // block address, so any hit the vector compare reports is THE hit.
    const std::uint64_t first = setOf(block) * config_.ways;
    const std::size_t w = simd::findEqual64(way_tags_.data() + first,
                                            config_.ways, block);
    return w == simd::kNpos ? nullptr : blocks_.data() + first + w;
}

const Cache::Block *
Cache::lookup(Addr block) const
{
    const std::uint64_t first = setOf(block) * config_.ways;
    const std::size_t w = simd::findEqual64(way_tags_.data() + first,
                                            config_.ways, block);
    return w == simd::kNpos ? nullptr : blocks_.data() + first + w;
}

bool
Cache::contains(Addr block) const
{
    return lookup(block) != nullptr;
}

bool
Cache::containsOrInFlight(Addr block)
{
    return contains(block) || mshrs_.find(block) != nullptr;
}

std::uint64_t
Cache::residentBlocks() const
{
    std::uint64_t n = 0;
    for (const Block &b : blocks_) {
        if (b.valid)
            ++n;
    }
    return n;
}

void
Cache::addEvictionListener(EvictionListener listener)
{
    eviction_listeners_.push_back(std::move(listener));
}

void
Cache::forEachResident(
    const std::function<void(Addr block, bool dirty, CoreId core)> &fn)
    const
{
    for (const Block &b : blocks_) {
        if (b.valid)
            fn(b.tag, b.dirty, b.core);
    }
}

void
Cache::checkInvariants(Cycle now) const
{
    if (mshrs_.size() > mshrs_.capacity())
        throw SimError(name_, now,
                       "MSHR occupancy " +
                           std::to_string(mshrs_.size()) +
                           " exceeds capacity " +
                           std::to_string(mshrs_.capacity()));
    if (prefetch_queue_.size() > config_.prefetch_queue)
        throw SimError(name_, now,
                       "prefetch queue holds " +
                           std::to_string(prefetch_queue_.size()) +
                           " entries, bound is " +
                           std::to_string(config_.prefetch_queue));

    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        const Block *base = blocks_.data() + set * config_.ways;
        const std::uint64_t *lru = way_lru_.data() + set * config_.ways;
        for (unsigned w = 0; w < config_.ways; ++w) {
            const Block &blk = base[w];
            if (!blk.valid)
                continue;
            if (setOf(blk.tag) != set)
                throw SimError(name_, now,
                               "resident block maps to set " +
                                   std::to_string(setOf(blk.tag)) +
                                   " but lives in set " +
                                   std::to_string(set));
            if (lru[w] > tick_)
                throw SimError(name_, now,
                               "LRU stamp " + std::to_string(lru[w]) +
                                   " is ahead of the recency clock " +
                                   std::to_string(tick_));
            for (unsigned v = w + 1; v < config_.ways; ++v) {
                if (base[v].valid && base[v].tag == blk.tag)
                    throw SimError(name_, now,
                                   "duplicate resident block in set " +
                                       std::to_string(set));
                if (base[v].valid && lru[v] == lru[w])
                    throw SimError(
                        name_, now,
                        "two blocks of set " + std::to_string(set) +
                            " share LRU stamp " +
                            std::to_string(lru[w]));
            }
        }
    }

    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        const Addr expect = blocks_[i].valid ? blocks_[i].tag : kNoTag;
        if (way_tags_[i] != expect)
            throw SimError(name_, now,
                           "way-tag mirror out of step at way index " +
                               std::to_string(i));
    }

    for (std::uint64_t set = 0; set < num_sets_; ++set) {
        unsigned filled = 0;
        for (unsigned w = 0; w < config_.ways; ++w)
            filled += blocks_[set * config_.ways + w].valid ? 1 : 0;
        if (filled != set_filled_[set])
            throw SimError(name_, now,
                           "set " + std::to_string(set) + " holds " +
                               std::to_string(filled) +
                               " valid ways but the fill counter "
                               "says " +
                               std::to_string(set_filled_[set]));
    }

    std::unordered_set<Addr> in_flight;
    mshrs_.forEach([&](const MshrEntry &entry) {
        if (!in_flight.insert(entry.block).second)
            throw SimError(name_, now, "duplicate in-flight block");
        if (contains(entry.block))
            throw SimError(name_, now,
                           "block is both resident and in flight");
    });
    if (in_flight.size() != mshrs_.size())
        throw SimError(name_, now,
                       "MSHR occupancy count disagrees with live "
                       "slots");

    // Drain invariant the run loop's fast-forward path relies on:
    // parked demands and queued prefetches only move when a fill
    // releases an MSHR, so either queue being nonempty means a fill
    // event is pending. An empty MSHR file alongside queued work would
    // leave the work stranded with no event to wake it.
    if ((!pending_.empty() || !prefetch_queue_.empty()) &&
        mshrs_.empty())
        throw SimError(name_, now,
                       "parked work (" +
                           std::to_string(pending_.size()) +
                           " demands, " +
                           std::to_string(prefetch_queue_.size()) +
                           " prefetches) with no in-flight MSHR to "
                           "drain it");
}

void
Cache::access(const MemAccess &access, Cycle now, FillCallback done)
{
    if (access.type == AccessType::Prefetch)
        throw SimError(name_, now,
                       "prefetch presented to the demand access path");
    ++stats_.demand_accesses;

    if (Block *block = lookup(access.block)) {
        ++stats_.demand_hits;
        touchBlock(static_cast<std::size_t>(block - blocks_.data()));
        block->core = access.core;
        if (block->prefetched) {
            block->prefetched = false;
            ++stats_.useful_prefetches;
            if (lifecycle_)
                lifecycle_->onDemandHit(access.block, now);
        }
        if (access.type == AccessType::Store)
            block->dirty = true;
        if (hook_)
            hook_(access, true, now);
        const Cycle ready = now + config_.hit_latency;
        events_.schedule(ready,
                         [done = std::move(done), ready] { done(ready); });
        return;
    }

    if (hook_)
        hook_(access, false, now);

    if (MshrEntry *entry = mshrs_.find(access.block)) {
        ++stats_.mshr_merges;
        if (entry->prefetch_origin) {
            // The prefetch was issued in time to overlap part of the
            // miss: covered, but late. Usefulness counts once per
            // block.
            ++stats_.late_prefetch_hits;
            if (!entry->demand_merged) {
                ++stats_.useful_prefetches;
                ++stats_.late_useful_prefetches;
                if (lifecycle_)
                    lifecycle_->onLateMerge(access.block, now);
            }
        } else {
            ++stats_.demand_misses;
        }
        entry->demand_merged = true;
        if (access.type == AccessType::Store)
            entry->store_merged = true;
        entry->callbacks.emplace_back(std::move(done), now);
        return;
    }

    ++stats_.demand_misses;
    if (mshrs_.full()) {
        ++stats_.mshr_stall_fetches;
        PendingFetch pending;
        pending.access = access;
        pending.arrival = now;
        pending.done = std::move(done);
        pending_.push_back(std::move(pending));
        return;
    }

    MshrEntry &entry =
        mshrs_.allocate(access.block, /*prefetch_origin=*/false,
                        access.core, now);
    entry.demand_merged = true;
    entry.store_merged = access.type == AccessType::Store;
    entry.callbacks.emplace_back(std::move(done), now);
    issueFetch(access, mshrs_.slotOf(entry), now);
}

bool
Cache::prefetchMshrAvailable() const
{
    // Leave a quarter of the MSHRs to demand traffic: a prefetcher
    // must not starve the misses it is supposed to hide.
    const std::size_t demand_reserve = config_.mshr_entries / 4;
    return mshrs_.size() + demand_reserve < mshrs_.capacity() &&
           pending_.empty();
}

void
Cache::prefetch(Addr block, Addr pc, CoreId core, Cycle now)
{
    ++stats_.prefetch_requests;
    // Chaos MSHR-occupancy spike: consulted exactly once per prefetch
    // request (so the fault schedule is per-opportunity), applied at
    // the headroom decision below. Demand traffic is never parked by
    // it, and drainPrefetchQueue() sees real occupancy only.
    const bool pressure_spike =
        mshr_pressure_hook_ && mshr_pressure_hook_();
    if (contains(block)) {
        ++stats_.prefetch_drops;
        ++stats_.prefetch_drop_present;
        return;
    }
    if (mshrs_.find(block) != nullptr) {
        ++stats_.prefetch_drops;
        ++stats_.prefetch_drop_inflight;
        return;
    }
    if (pressure_spike || !prefetchMshrAvailable()) {
        // Park in the prefetch queue (bounded); oldest-first issue as
        // MSHRs free up. When the queue is full the request is lost,
        // as in hardware.
        if (prefetch_queue_.size() < config_.prefetch_queue) {
            prefetch_queue_.push_back(QueuedPrefetch{block, pc, core});
        } else {
            ++stats_.prefetch_drops;
            ++stats_.prefetch_drop_mshr;
        }
        return;
    }
    MshrEntry &entry =
        mshrs_.allocate(block, /*prefetch_origin=*/true, core, now);
    if (lifecycle_)
        lifecycle_->onIssue(block, now);
    MemAccess access;
    access.block = block;
    access.pc = pc;
    access.core = core;
    access.type = AccessType::Prefetch;
    issueFetch(access, mshrs_.slotOf(entry), now);
}

void
Cache::drainPrefetchQueue(Cycle now)
{
    while (!prefetch_queue_.empty() && prefetchMshrAvailable()) {
        const QueuedPrefetch qp = prefetch_queue_.front();
        prefetch_queue_.pop_front();
        if (contains(qp.block)) {
            ++stats_.prefetch_drops;
            ++stats_.prefetch_drop_present;
            continue;
        }
        if (mshrs_.find(qp.block) != nullptr) {
            ++stats_.prefetch_drops;
            ++stats_.prefetch_drop_inflight;
            continue;
        }
        MshrEntry &entry = mshrs_.allocate(
            qp.block, /*prefetch_origin=*/true, qp.core, now);
        if (lifecycle_)
            lifecycle_->onIssue(qp.block, now);
        MemAccess access;
        access.block = qp.block;
        access.pc = qp.pc;
        access.core = qp.core;
        access.type = AccessType::Prefetch;
        issueFetch(access, mshrs_.slotOf(entry), now);
    }
}

void
Cache::issueFetch(const MemAccess &access, std::size_t slot, Cycle now)
{
    // Typed completion carrying only the 4-byte slot (the MSHR entry
    // carries the block): issuing a fetch allocates nothing, and the
    // fill dispatches straight back into handleFill().
    // The miss is detected after the tag lookup completes.
    lower_.fetch(access, now + config_.hit_latency,
                 Completion::cacheFill(
                     this, static_cast<std::uint32_t>(slot)));
}

void
Cache::handleFill(std::size_t slot, Cycle fill_cycle)
{
    MshrEntry entry = mshrs_.releaseSlot(slot, fill_cycle);
    const Addr block = entry.block;

    Block &victim = victimize(block, fill_cycle);
    const auto way_index =
        static_cast<std::size_t>(&victim - blocks_.data());
    if (!victim.valid)
        ++set_filled_[way_index / config_.ways];
    victim.valid = true;
    victim.tag = block;
    way_tags_[way_index] = block;
    victim.dirty = entry.store_merged;
    victim.prefetched = entry.prefetch_origin && !entry.demand_merged;
    victim.core = entry.core;
    way_lru_[way_index] = ++tick_;
    // SRRIP inserts at "long" re-reference (2 of 3).
    way_rrpv_[way_index] = 2;
    if (entry.prefetch_origin) {
        ++stats_.prefetch_fills;
        if (lifecycle_)
            lifecycle_->onFill(block, fill_cycle);
    }

    for (MshrCallback &cb : entry.callbacks) {
        // Latency accrues before the callback runs, exactly where the
        // former capturing wrapper accounted it.
        if (cb.track)
            stats_.demand_miss_latency += fill_cycle - cb.start;
        cb.fn(fill_cycle);
    }
    // Park the callback vector's capacity for the next allocation;
    // with it, a steady-state miss makes no heap round trips at all.
    mshrs_.recycle(std::move(entry));

    // MSHRs freed: replay parked demand fetches. Parked accesses whose
    // block arrived meanwhile (or whose miss is already in flight) are
    // satisfied without consuming an MSHR, so keep draining until a
    // replay actually needs an entry and none is free.
    while (!pending_.empty()) {
        if (Block *hit = lookup(pending_.front().access.block)) {
            PendingFetch replay = std::move(pending_.front());
            pending_.pop_front();
            touchBlock(static_cast<std::size_t>(hit - blocks_.data()));
            if (hit->prefetched) {
                hit->prefetched = false;
                ++stats_.useful_prefetches;
                if (lifecycle_)
                    lifecycle_->onDemandHit(replay.access.block,
                                            fill_cycle);
            }
            if (replay.access.type == AccessType::Store)
                hit->dirty = true;
            replay.done(fill_cycle);
            continue;
        }
        if (MshrEntry *open = mshrs_.find(pending_.front().access.block)) {
            PendingFetch replay = std::move(pending_.front());
            pending_.pop_front();
            open->demand_merged = true;
            if (replay.access.type == AccessType::Store)
                open->store_merged = true;
            open->callbacks.push_back(std::move(replay.done));
            continue;
        }
        if (mshrs_.full())
            break;
        PendingFetch replay = std::move(pending_.front());
        pending_.pop_front();
        const MemAccess acc = replay.access;
        MshrEntry &fresh =
            mshrs_.allocate(acc.block, /*prefetch_origin=*/false,
                            acc.core, fill_cycle);
        fresh.demand_merged = true;
        fresh.store_merged = acc.type == AccessType::Store;
        fresh.callbacks.push_back(std::move(replay.done));
        issueFetch(acc, mshrs_.slotOf(fresh), fill_cycle);
    }

    drainPrefetchQueue(fill_cycle);
}

Cache::Block &
Cache::victimize(Addr block, Cycle now)
{
    const std::uint64_t set = setOf(block);
    const std::size_t first = set * config_.ways;
    Block *base = blocks_.data() + first;
    Block *victim = nullptr;
    // Fill order: any invalid way first (sets never un-fill, so the
    // counter lets the steady state skip the scan entirely); the
    // first kNoTag match is the same way the Block-by-Block scan
    // would pick.
    if (set_filled_[set] < config_.ways) {
        const std::size_t invalid_way =
            simd::findEqual64(way_tags_.data() + first, config_.ways,
                              kNoTag);
        if (invalid_way != simd::kNpos)
            victim = base + invalid_way;
    }
    if (victim == nullptr) {
        switch (config_.replacement) {
          case ReplacementKind::Lru: {
            const std::uint64_t *lru = way_lru_.data() + first;
            unsigned best = 0;
            for (unsigned w = 1; w < config_.ways; ++w) {
                if (lru[w] < lru[best])
                    best = w;
            }
            victim = base + best;
            break;
          }
          case ReplacementKind::Srrip: {
            // Find a distant (rrpv==3) block, aging the set until one
            // appears.
            std::uint8_t *rrpv = way_rrpv_.data() + first;
            while (victim == nullptr) {
                for (unsigned w = 0; w < config_.ways; ++w) {
                    if (rrpv[w] >= 3) {
                        victim = base + w;
                        break;
                    }
                }
                if (victim == nullptr) {
                    for (unsigned w = 0; w < config_.ways; ++w)
                        ++rrpv[w];
                }
            }
            break;
          }
          case ReplacementKind::Random:
            // xorshift64 victim pick.
            victim_rng_ ^= victim_rng_ << 13;
            victim_rng_ ^= victim_rng_ >> 7;
            victim_rng_ ^= victim_rng_ << 17;
            victim = base + victim_rng_ % config_.ways;
            break;
        }
        ++stats_.evictions;
        if (victim->prefetched) {
            ++stats_.useless_prefetches;
            if (lifecycle_)
                lifecycle_->onEvictUnused(victim->tag);
        }
        if (victim->dirty) {
            ++stats_.writebacks;
            lower_.writeback(victim->tag, victim->core, now);
        }
        for (EvictionListener &listener : eviction_listeners_)
            listener(victim->tag);
    }
    return *victim;
}

void
Cache::registerTelemetry(telemetry::Registry &registry) const
{
    // Probes only: every value is a counter this cache maintains
    // anyway, read live when a snapshot is taken.
    registry.probeGroup(
        name_ + ".",
        [this](std::map<std::string, std::uint64_t> &out) {
            const CacheStats &s = stats_;
            out["demand_accesses"] = s.demand_accesses;
            out["demand_hits"] = s.demand_hits;
            out["demand_misses"] = s.demand_misses;
            out["late_prefetch_hits"] = s.late_prefetch_hits;
            out["mshr_merges"] = s.mshr_merges;
            out["mshr_stall_fetches"] = s.mshr_stall_fetches;
            out["prefetch_requests"] = s.prefetch_requests;
            out["prefetch_drops"] = s.prefetch_drops;
            out["prefetch_drop_present"] = s.prefetch_drop_present;
            out["prefetch_drop_inflight"] = s.prefetch_drop_inflight;
            out["prefetch_drop_mshr"] = s.prefetch_drop_mshr;
            out["prefetch_fills"] = s.prefetch_fills;
            out["useful_prefetches"] = s.useful_prefetches;
            out["useless_prefetches"] = s.useless_prefetches;
            out["late_useful_prefetches"] = s.late_useful_prefetches;
            out["timely_useful_prefetches"] =
                s.timelyUsefulPrefetches();
            out["writebacks"] = s.writebacks;
            out["evictions"] = s.evictions;
            out["demand_miss_latency"] = s.demand_miss_latency;
            out["mshr_occupancy"] = mshrs_.size();
            out["prefetch_queue_depth"] = prefetch_queue_.size();
            out["pending_fetches"] = pending_.size();
            out["resident_blocks"] = residentBlocks();
        });
    mshrs_.registerTelemetry(registry, name_ + ".mshr.");
}

DramLower::DramLower(DramController &dram, EventQueue &events)
    : dram_(dram), events_(events)
{
}

void
DramLower::fetch(const MemAccess &access, Cycle now, FillCallback done)
{
    Cycle completion = dram_.read(access.block, now);
    if (fault_hook_)
        completion = fault_hook_(access, now, completion);
    events_.schedule(completion,
                     [done = std::move(done), completion] {
                         done(completion);
                     });
}

void
DramLower::writeback(Addr block, CoreId core, Cycle now)
{
    (void)core;
    dram_.write(block, now);
}

void
CacheLower::fetch(const MemAccess &access, Cycle now, FillCallback done)
{
    cache_.access(access, now, std::move(done));
}

void
CacheLower::writeback(Addr block, CoreId core, Cycle now)
{
    (void)core;
    (void)now;
    (void)block;
    // Dirty data written back from the L1 either updates the LLC copy
    // in place (zero-cost in this timing model) or, when the LLC no
    // longer holds the block, is forwarded to memory by the LLC's own
    // writeback path when the line was installed dirty. We deliberately
    // do not allocate on writeback.
}

} // namespace bingo
