#include "cache/mshr.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/sim_check.hpp"
#include "telemetry/registry.hpp"

namespace bingo
{

namespace
{

std::string
blockHex(Addr block)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(block));
    return buf;
}

} // namespace

MshrFile::MshrFile(std::size_t capacity, std::string name)
    : capacity_(capacity), name_(std::move(name))
{
    if (capacity == 0)
        throw std::invalid_argument("MshrFile " + name_ +
                                    ": capacity must be nonzero");
    entries_.reserve(capacity);
    free_nodes_.reserve(capacity);
}

MshrEntry *
MshrFile::find(Addr block)
{
    auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
}

MshrEntry &
MshrFile::allocate(Addr block, bool prefetch_origin, CoreId core,
                   Cycle now)
{
    if (full())
        throw SimError(name_, now,
                       "MSHR allocation past capacity (" +
                           std::to_string(capacity_) +
                           " entries in flight) for block " +
                           blockHex(block));
    MshrEntry *entry = nullptr;
    if (!free_nodes_.empty()) {
        auto node = std::move(free_nodes_.back());
        free_nodes_.pop_back();
        node.key() = block;
        node.mapped() = MshrEntry{};
        auto res = entries_.insert(std::move(node));
        if (!res.inserted) {
            free_nodes_.push_back(std::move(res.node));
            throw SimError(
                name_, now,
                "duplicate MSHR allocation for in-flight block " +
                    blockHex(block));
        }
        entry = &res.position->second;
    } else {
        auto [it, inserted] = entries_.try_emplace(block);
        if (!inserted)
            throw SimError(
                name_, now,
                "duplicate MSHR allocation for in-flight block " +
                    blockHex(block));
        entry = &it->second;
    }
    entry->block = block;
    entry->prefetch_origin = prefetch_origin;
    entry->core = core;
    return *entry;
}

MshrEntry
MshrFile::release(Addr block, Cycle now)
{
    auto it = entries_.find(block);
    if (it == entries_.end())
        throw SimError(name_, now,
                       "release of block " + blockHex(block) +
                           " with no MSHR entry");
    MshrEntry entry = std::move(it->second);
    // Keep the map node for the next allocate instead of freeing it.
    free_nodes_.push_back(entries_.extract(it));
    return entry;
}

void
MshrFile::registerTelemetry(telemetry::Registry &registry,
                            const std::string &prefix) const
{
    registry.probeGroup(
        prefix, [this](std::map<std::string, std::uint64_t> &out) {
            out["occupancy"] = entries_.size();
            out["capacity"] = capacity_;
        });
}

} // namespace bingo
