#include "cache/mshr.hpp"

#include <cassert>

namespace bingo
{

MshrFile::MshrFile(std::size_t capacity)
    : capacity_(capacity)
{
    assert(capacity > 0);
    entries_.reserve(capacity);
}

MshrEntry *
MshrFile::find(Addr block)
{
    auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
}

MshrEntry &
MshrFile::allocate(Addr block, bool prefetch_origin, CoreId core)
{
    assert(!full());
    assert(entries_.find(block) == entries_.end());
    MshrEntry &entry = entries_[block];
    entry.block = block;
    entry.prefetch_origin = prefetch_origin;
    entry.core = core;
    return entry;
}

MshrEntry
MshrFile::release(Addr block)
{
    auto it = entries_.find(block);
    assert(it != entries_.end());
    MshrEntry entry = std::move(it->second);
    entries_.erase(it);
    return entry;
}

} // namespace bingo
