#include "cache/mshr.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/sim_check.hpp"
#include "telemetry/registry.hpp"

namespace bingo
{

namespace
{

std::string
blockHex(Addr block)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(block));
    return buf;
}

} // namespace

MshrFile::MshrFile(std::size_t capacity, std::string name)
    : capacity_(capacity), name_(std::move(name))
{
    if (capacity == 0)
        throw std::invalid_argument("MshrFile " + name_ +
                                    ": capacity must be nonzero");
    slots_.resize(capacity);
    slot_blocks_.assign(capacity, kFreeSlot);
    free_slots_.reserve(capacity);
    for (std::size_t i = capacity; i > 0; --i)
        free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
    callback_pool_.reserve(capacity);
}

MshrEntry &
MshrFile::allocate(Addr block, bool prefetch_origin, CoreId core,
                   Cycle now)
{
    if (full())
        throw SimError(name_, now,
                       "MSHR allocation past capacity (" +
                           std::to_string(capacity_) +
                           " entries in flight) for block " +
                           blockHex(block));
    if (block == kFreeSlot)
        throw SimError(name_, now,
                       "MSHR allocation for the reserved sentinel "
                       "address " +
                           blockHex(block));
    // Every caller probes find(block) before allocating, so this scan
    // is a pure double-check; run it only under the BINGO_CHECK layer
    // (checkInvariants sweeps for duplicates periodically as well).
    if (simCheckEnabled() && find(block) != nullptr)
        throw SimError(name_, now,
                       "duplicate MSHR allocation for in-flight "
                       "block " +
                           blockHex(block));
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    MshrEntry &entry = slots_[slot];
    entry.block = block;
    entry.prefetch_origin = prefetch_origin;
    entry.demand_merged = false;
    entry.store_merged = false;
    entry.core = core;
    if (!entry.callbacks.empty())
        entry.callbacks.clear();
    if (entry.callbacks.capacity() == 0 && !callback_pool_.empty()) {
        entry.callbacks = std::move(callback_pool_.back());
        callback_pool_.pop_back();
    }
    slot_blocks_[slot] = block;
    ++size_;
    return entry;
}

MshrEntry
MshrFile::release(Addr block, Cycle now)
{
    const std::size_t slot = simd::findEqual64(
        slot_blocks_.data(), slot_blocks_.size(), block);
    if (slot == simd::kNpos)
        throw SimError(name_, now,
                       "release of block " + blockHex(block) +
                           " with no MSHR entry");
    return releaseAt(slot, block, now);
}

MshrEntry
MshrFile::releaseAt(std::size_t slot, Addr block, Cycle now)
{
    if (slot >= slot_blocks_.size() || slot_blocks_[slot] != block)
        throw SimError(name_, now,
                       "release of block " + blockHex(block) +
                           " at slot " + std::to_string(slot) +
                           " which does not hold it");
    return releaseSlot(slot, now);
}

MshrEntry
MshrFile::releaseSlot(std::size_t slot, Cycle now)
{
    if (slot >= slot_blocks_.size() || slot_blocks_[slot] == kFreeSlot)
        throw SimError(name_, now,
                       "release of slot " + std::to_string(slot) +
                           " which holds no in-flight miss");
    MshrEntry entry = std::move(slots_[slot]);
    slots_[slot] = MshrEntry{};
    slot_blocks_[slot] = kFreeSlot;
    free_slots_.push_back(static_cast<std::uint32_t>(slot));
    --size_;
    return entry;
}

void
MshrFile::clear()
{
    for (std::size_t i = 0; i < capacity_; ++i) {
        if (slot_blocks_[i] == kFreeSlot)
            continue;
        slots_[i] = MshrEntry{};
        slot_blocks_[i] = kFreeSlot;
    }
    size_ = 0;
    free_slots_.clear();
    for (std::size_t i = capacity_; i > 0; --i)
        free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
}

void
MshrFile::registerTelemetry(telemetry::Registry &registry,
                            const std::string &prefix) const
{
    registry.probeGroup(
        prefix, [this](std::map<std::string, std::uint64_t> &out) {
            out["occupancy"] = size_;
            out["capacity"] = capacity_;
        });
}

} // namespace bingo
