/**
 * @file
 * Typed memory-completion record replacing the type-erased
 * std::function fill-callback chain on the simulator's hottest path.
 *
 * Every load fill, store release and cache fill used to travel as a
 * std::function<void(Cycle)> through Cache::access -> MSHR ->
 * MemoryLower::fetch -> EventQueue, paying a type-erased indirect call
 * (and move churn) per hop. The dominant cases are known statically:
 * a load fill completes an OooCore ROB slot, a store release frees an
 * LSQ entry, and a lower-level fill lands in a Cache MSHR slot. A
 * Completion carries exactly {kind, target, seq-or-slot} and
 * dispatches through one switch to the target's (inline) completion
 * method. Arbitrary callables — tests, benches, observers — still
 * work: they take the Generic kind, a heap-held std::function, which
 * keeps the old flexibility off the hot path instead of on it.
 *
 * A Completion is 32 bytes and nothrow-movable, so event-queue
 * lambdas capturing one stay on the InlineCallback inline path.
 */

#ifndef BINGO_CACHE_COMPLETION_HPP
#define BINGO_CACHE_COMPLETION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/types.hpp"

namespace bingo
{

class OooCore;
class Cache;

/** Tagged completion record; see file comment. */
class Completion
{
  public:
    enum class Kind : std::uint8_t
    {
        None,          ///< Empty (default-constructed or moved-from).
        LoadFill,      ///< OooCore::completeLoad(seq, when).
        StoreRelease,  ///< OooCore::completeStore(when).
        CacheFill,     ///< Cache::handleFill(slot, when).
        Generic,       ///< Heap-held std::function fallback.
    };

    Completion() noexcept = default;

    /** Any other callable takes the Generic fallback path. */
    template <typename Fn,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<Fn>, Completion> &&
                  std::is_invocable_v<std::decay_t<Fn> &, Cycle>>>
    Completion(Fn &&fn)  // NOLINT(google-explicit-constructor)
        : kind_(Kind::Generic),
          fn_(std::make_unique<std::function<void(Cycle)>>(
              std::forward<Fn>(fn)))
    {
    }

    /** Fill completing ROB sequence `seq` of `core`. */
    static Completion
    loadFill(OooCore *core, std::uint64_t seq) noexcept
    {
        Completion c;
        c.kind_ = Kind::LoadFill;
        c.target_ = core;
        c.seq_ = seq;
        return c;
    }

    /** Store write-completion freeing one LSQ entry of `core`. */
    static Completion
    storeRelease(OooCore *core) noexcept
    {
        Completion c;
        c.kind_ = Kind::StoreRelease;
        c.target_ = core;
        return c;
    }

    /** Lower-level fill landing in MSHR slot `slot` of `cache`. */
    static Completion
    cacheFill(Cache *cache, std::uint32_t slot) noexcept
    {
        Completion c;
        c.kind_ = Kind::CacheFill;
        c.target_ = cache;
        c.slot_ = slot;
        return c;
    }

    Completion(Completion &&other) noexcept
        : kind_(std::exchange(other.kind_, Kind::None)),
          slot_(other.slot_), target_(other.target_), seq_(other.seq_),
          fn_(std::move(other.fn_))
    {
    }

    Completion &
    operator=(Completion &&other) noexcept
    {
        if (this != &other) {
            kind_ = std::exchange(other.kind_, Kind::None);
            slot_ = other.slot_;
            target_ = other.target_;
            seq_ = other.seq_;
            fn_ = std::move(other.fn_);
        }
        return *this;
    }

    Completion(const Completion &) = delete;
    Completion &operator=(const Completion &) = delete;

    Kind kind() const noexcept { return kind_; }

    explicit operator bool() const noexcept
    {
        return kind_ != Kind::None;
    }

    /**
     * Dispatch to the target's completion method (no-op when empty).
     * Defined in completion.cpp, which sees the full OooCore/Cache
     * definitions; the typed branches call inline methods, so the
     * whole path is one direct call plus a switch.
     */
    void operator()(Cycle when) const;

  private:
    Kind kind_ = Kind::None;
    std::uint32_t slot_ = 0;
    void *target_ = nullptr;
    std::uint64_t seq_ = 0;
    std::unique_ptr<std::function<void(Cycle)>> fn_;
};

static_assert(sizeof(Completion) <= 32,
              "Completion must stay small enough for event-queue "
              "lambdas capturing one to use InlineCallback's inline "
              "storage");

/**
 * Completion callback of a memory access: invoked with the cycle the
 * data arrives. Historically a std::function<void(Cycle)>; now the
 * typed Completion record, which still accepts any callable.
 */
using FillCallback = Completion;

} // namespace bingo

#endif // BINGO_CACHE_COMPLETION_HPP
