/**
 * @file
 * Set-associative write-back cache with MSHRs, prefetch-bit accounting,
 * and eviction listeners.
 *
 * The same class models both the private L1D and the shared LLC; the
 * level below is abstracted as a MemoryLower (the LLC for an L1, the
 * DRAM controller for the LLC). Prefetch requests enter through
 * prefetch() and are marked in the block metadata so usefulness can be
 * measured exactly: a demand hit on a marked block is a useful
 * prefetch; evicting a still-marked block is a useless one.
 *
 * Demand fetches that arrive while the MSHR file is full are parked in
 * an unbounded pending queue and replayed as entries free up (they still
 * pay the waiting time); prefetches are simply dropped, as hardware
 * does.
 */

#ifndef BINGO_CACHE_CACHE_HPP
#define BINGO_CACHE_CACHE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "cache/mshr.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/inline_callback.hpp"
#include "common/types.hpp"

namespace bingo
{

namespace telemetry
{
class PrefetchLifecycle;
class Registry;
} // namespace telemetry

/** A memory access presented to a cache. */
struct MemAccess
{
    Addr block = 0;     ///< Block-aligned byte address.
    Addr pc = 0;
    CoreId core = 0;
    AccessType type = AccessType::Load;
};

/** The level below a cache. */
class MemoryLower
{
  public:
    virtual ~MemoryLower() = default;

    /**
     * Fetch `access.block`; invoke `done` with the cycle at which the
     * data reaches the requesting cache.
     */
    virtual void fetch(const MemAccess &access, Cycle now,
                       FillCallback done) = 0;

    /** Write back a dirty block (nothing waits on it). */
    virtual void writeback(Addr block, CoreId core, Cycle now) = 0;
};

/** Counters exported by a cache. */
struct CacheStats
{
    std::uint64_t demand_accesses = 0;
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_misses = 0;       ///< New or demand-merged miss.
    std::uint64_t late_prefetch_hits = 0;  ///< Demand merged into pf MSHR.
    std::uint64_t mshr_merges = 0;
    std::uint64_t mshr_stall_fetches = 0;  ///< Demands parked when full.
    std::uint64_t prefetch_requests = 0;   ///< Prefetches presented.
    std::uint64_t prefetch_drops = 0;      ///< Sum of the three below.
    std::uint64_t prefetch_drop_present = 0;
    std::uint64_t prefetch_drop_inflight = 0;
    std::uint64_t prefetch_drop_mshr = 0;
    std::uint64_t prefetch_fills = 0;
    std::uint64_t useful_prefetches = 0;   ///< Includes late ones.
    std::uint64_t useless_prefetches = 0;
    /** Useful blocks whose first demand merged into the pf MSHR. */
    std::uint64_t late_useful_prefetches = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t evictions = 0;
    std::uint64_t demand_miss_latency = 0;  ///< Sum over demand misses.

    double
    avgDemandMissLatency() const
    {
        return demand_misses == 0
                   ? 0.0
                   : static_cast<double>(demand_miss_latency) /
                         static_cast<double>(demand_misses);
    }

    /** Useful blocks that were resident before their first demand. */
    std::uint64_t
    timelyUsefulPrefetches() const
    {
        return useful_prefetches - late_useful_prefetches;
    }

    /** Share of useful prefetches that arrived late; 0 when none. */
    double
    lateHitRate() const
    {
        return useful_prefetches == 0
                   ? 0.0
                   : static_cast<double>(late_useful_prefetches) /
                         static_cast<double>(useful_prefetches);
    }
};

/** Set-associative write-back cache level. */
class Cache
{
  public:
    /**
     * Called when a block leaves the cache (eviction). Inline-storage
     * callback (like the event queue's): the hooks fire on hot paths
     * and their captures are a pointer or two, so none of them should
     * pay std::function's heap allocation and double indirection.
     */
    using EvictionListener = InlineFunction<void(Addr block)>;

    /**
     * Hook observing every demand access (after hit/miss is known) —
     * the attachment point for LLC prefetchers.
     */
    using AccessHook =
        InlineFunction<void(const MemAccess &, bool hit, Cycle now)>;

    /**
     * Chaos hook consulted once per prefetch() call; returning true
     * makes the request behave as if the MSHR file had no prefetch
     * headroom (queued, or dropped when the queue is full). Queued
     * prefetches drain on fills as usual — the spike models transient
     * pressure at issue time, not a wedged MSHR file.
     */
    using MshrPressureHook = InlineFunction<bool()>;

    Cache(std::string name, const CacheConfig &config, EventQueue &events,
          MemoryLower &lower);

    /**
     * Demand access (load or store). `done` is invoked with the cycle
     * at which data is available; stores also invoke it (when the line
     * is owned) so the LSQ can free the entry.
     */
    void access(const MemAccess &access, Cycle now, FillCallback done);

    /**
     * Prefetch `block` into this cache on behalf of `core`. Dropped if
     * the block is present, already in flight, or the MSHRs are full.
     */
    void prefetch(Addr block, Addr pc, CoreId core, Cycle now);

    /** Whether `block` is currently resident. */
    bool contains(Addr block) const;

    /** Whether `block` is resident or being fetched. */
    bool containsOrInFlight(Addr block);

    void setAccessHook(AccessHook hook) { hook_ = std::move(hook); }
    void setMshrPressureHook(MshrPressureHook hook)
    {
        mshr_pressure_hook_ = std::move(hook);
    }
    void addEvictionListener(EvictionListener listener);

    /**
     * Visit every resident block (valid lines only) with its dirty
     * flag and last-toucher core. Cold path: used by the shadow-model
     * cross-check and diagnostics.
     */
    void forEachResident(
        const std::function<void(Addr block, bool dirty, CoreId core)>
            &fn) const;

    /**
     * Attach a prefetch lifecycle tracker (telemetry). Null detaches;
     * when detached, every event site is one pointer test.
     */
    void setLifecycleTracker(telemetry::PrefetchLifecycle *tracker)
    {
        lifecycle_ = tracker;
    }

    /** Register this cache's counters and occupancy probes. */
    void registerTelemetry(telemetry::Registry &registry) const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }
    const std::string &name() const { return name_; }
    const CacheConfig &config() const { return config_; }

    /** Number of resident blocks (tests/diagnostics). */
    std::uint64_t residentBlocks() const;

    /**
     * Structural self-check (the BINGO_CHECK layer): MSHR occupancy
     * within capacity and disjoint from the resident set, every valid
     * block mapped to its set with a unique tag and a sane recency
     * stamp, prefetch queue within bounds. Throws SimError tagged with
     * this cache's name and `now` on the first violation.
     */
    void checkInvariants(Cycle now) const;

  private:
    /// The typed completion record dispatches CacheFill completions
    /// straight into handleFill().
    friend class Completion;

    struct Block
    {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;  ///< Filled by prefetch, unused so far.
        Addr tag = 0;             ///< Full block address.
        CoreId core = 0;          ///< Last toucher (for writeback path).
        // Replacement state (LRU stamp, RRPV) lives in the way_lru_ /
        // way_rrpv_ SoA arrays: victim selection scans a whole set of
        // it on every fill, and packed arrays keep that scan inside
        // two cache lines instead of striding through Block records.
    };

    struct PendingFetch
    {
        MemAccess access;
        Cycle arrival = 0;
        FillCallback done;
    };

    struct QueuedPrefetch
    {
        Addr block = 0;
        Addr pc = 0;
        CoreId core = 0;
    };

    /** Whether a prefetch may take an MSHR right now. */
    bool prefetchMshrAvailable() const;

    /** Issue queued prefetches while MSHR headroom lasts. */
    void drainPrefetchQueue(Cycle now);

    std::uint64_t setOf(Addr block) const;
    Block *lookup(Addr block);

    /** Recency bookkeeping on a hit/fill, per the configured policy. */
    void touchBlock(std::size_t way_index);
    const Block *lookup(Addr block) const;

    /**
     * Start the lower-level fetch for an allocated MSHR entry.
     * `slot` is the entry's slotOf() index, carried through the fill
     * callback so completion releases the MSHR without a key scan.
     */
    void issueFetch(const MemAccess &access, std::size_t slot,
                    Cycle now);

    /** Install the fill for MSHR `slot` and drain its callbacks. */
    void handleFill(std::size_t slot, Cycle fill_cycle);

    /** Pick a victim way and evict it if valid. */
    Block &victimize(Addr block, Cycle now);

    std::string name_;
    CacheConfig config_;
    EventQueue &events_;
    MemoryLower &lower_;
    /// way_tags_ sentinel for an invalid way: odd, so it can never
    /// equal a block-aligned address.
    static constexpr Addr kNoTag = 1;

    std::uint64_t num_sets_;
    std::vector<Block> blocks_;
    /// blocks_[i].tag mirrored densely (kNoTag while invalid): the way
    /// scan in lookup() runs on every access and touches only tags, so
    /// packing them 8 per cache line beats striding through the ~40-
    /// byte Block records. handleFill() is the only writer of
    /// valid/tag and keeps the mirror in step.
    std::vector<Addr> way_tags_;
    /// Per-way recency stamps and RRPVs, packed like way_tags_ so the
    /// victim scan (and SRRIP aging) stays in a few cache lines.
    std::vector<std::uint64_t> way_lru_;
    std::vector<std::uint8_t> way_rrpv_;
    /// Valid ways per set. Blocks are never invalidated, so once a
    /// set fills this saturates at `ways` and victimize() skips the
    /// invalid-way scan for good.
    std::vector<std::uint8_t> set_filled_;
    MshrFile mshrs_;
    std::deque<PendingFetch> pending_;
    std::deque<QueuedPrefetch> prefetch_queue_;
    CacheStats stats_;
    AccessHook hook_;
    MshrPressureHook mshr_pressure_hook_;
    telemetry::PrefetchLifecycle *lifecycle_ = nullptr;
    std::vector<EvictionListener> eviction_listeners_;
    std::uint64_t tick_ = 0;
    std::uint64_t victim_rng_ = 0x9e3779b97f4a7c15ULL;
};

/** Adapts the DRAM controller to the MemoryLower interface. */
class DramLower : public MemoryLower
{
  public:
    /**
     * Chaos hook over DRAM response timing: given the access and the
     * controller-computed completion cycle, returns the cycle the fill
     * actually lands (later for an injected delay; a drop-and-retry
     * re-reads the controller). Identity when unset.
     */
    using DramFaultHook = std::function<Cycle(
        const MemAccess &access, Cycle now, Cycle completion)>;

    DramLower(class DramController &dram, EventQueue &events);

    void fetch(const MemAccess &access, Cycle now,
               FillCallback done) override;
    void writeback(Addr block, CoreId core, Cycle now) override;

    void setFaultHook(DramFaultHook hook)
    {
        fault_hook_ = std::move(hook);
    }

  private:
    DramController &dram_;
    EventQueue &events_;
    DramFaultHook fault_hook_;
};

/** Adapts a Cache (the LLC) to the MemoryLower interface for an L1. */
class CacheLower : public MemoryLower
{
  public:
    explicit CacheLower(Cache &cache) : cache_(cache) {}

    void fetch(const MemAccess &access, Cycle now,
               FillCallback done) override;
    void writeback(Addr block, CoreId core, Cycle now) override;

  private:
    Cache &cache_;
};

} // namespace bingo

#endif // BINGO_CACHE_CACHE_HPP
