/**
 * @file
 * Miss Status Holding Registers: track outstanding misses per block and
 * merge secondary misses into the primary's entry.
 */

#ifndef BINGO_CACHE_MSHR_HPP
#define BINGO_CACHE_MSHR_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bingo
{

/** Callback invoked with the cycle at which the fill completed. */
using FillCallback = std::function<void(Cycle)>;

/** One in-flight miss. */
struct MshrEntry
{
    Addr block = 0;
    bool prefetch_origin = false;  ///< Allocated by a prefetch request.
    bool demand_merged = false;    ///< A demand joined after allocation.
    bool store_merged = false;     ///< Fill must be installed dirty.
    CoreId core = 0;               ///< Core that allocated the entry.
    std::vector<FillCallback> callbacks;
};

/** Fixed-capacity file of MshrEntry keyed by block address. */
class MshrFile
{
  public:
    explicit MshrFile(std::size_t capacity);

    /** Entry for `block`, or nullptr when not in flight. */
    MshrEntry *find(Addr block);

    /** True when no further allocation is possible. */
    bool full() const { return entries_.size() >= capacity_; }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Allocate an entry for `block`. Pre: !full() and !find(block).
     * @return Reference valid until release(block).
     */
    MshrEntry &allocate(Addr block, bool prefetch_origin, CoreId core);

    /**
     * Remove the entry for `block` and return it (callbacks included).
     * Pre: find(block) != nullptr.
     */
    MshrEntry release(Addr block);

    void clear() { entries_.clear(); }

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, MshrEntry> entries_;
};

} // namespace bingo

#endif // BINGO_CACHE_MSHR_HPP
