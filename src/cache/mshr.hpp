/**
 * @file
 * Miss Status Holding Registers: track outstanding misses per block and
 * merge secondary misses into the primary's entry.
 *
 * Structural violations (allocation past capacity, duplicate in-flight
 * blocks, release of an absent entry) throw SimError with the owning
 * component's name and the simulated cycle — these replace the bare
 * asserts that used to guard the same paths, and hold in release
 * builds too.
 */

#ifndef BINGO_CACHE_MSHR_HPP
#define BINGO_CACHE_MSHR_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bingo
{

namespace telemetry
{
class Registry;
} // namespace telemetry

/** Callback invoked with the cycle at which the fill completed. */
using FillCallback = std::function<void(Cycle)>;

/**
 * A completion parked on an in-flight miss. The owning cache accounts
 * `fill - start` of demand miss latency before invoking `fn` when
 * `track` is set; carrying the accounting as plain data instead of
 * wrapping `fn` in a capturing lambda keeps the common miss path free
 * of a per-callback heap allocation (the wrapper capture outgrew
 * std::function's inline buffer).
 */
struct MshrCallback
{
    FillCallback fn;
    Cycle start = 0;
    bool track = false;  ///< Accrue demand miss latency at fill time.

    /// Untracked completion (replayed demands, tests).
    MshrCallback(FillCallback f) : fn(std::move(f)) {}
    /// Latency-tracked demand that missed at cycle `s`.
    MshrCallback(FillCallback f, Cycle s)
        : fn(std::move(f)), start(s), track(true)
    {
    }
};

/** One in-flight miss. */
struct MshrEntry
{
    Addr block = 0;
    bool prefetch_origin = false;  ///< Allocated by a prefetch request.
    bool demand_merged = false;    ///< A demand joined after allocation.
    bool store_merged = false;     ///< Fill must be installed dirty.
    CoreId core = 0;               ///< Core that allocated the entry.
    std::vector<MshrCallback> callbacks;
};

/** Fixed-capacity file of MshrEntry keyed by block address. */
class MshrFile
{
  public:
    /** Throws std::invalid_argument when `capacity` is zero. */
    explicit MshrFile(std::size_t capacity, std::string name = "mshr");

    /** Entry for `block`, or nullptr when not in flight. */
    MshrEntry *find(Addr block);

    /** True when no further allocation is possible. */
    bool full() const { return entries_.size() >= capacity_; }

    /** True when no miss is in flight. */
    bool empty() const { return entries_.empty(); }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    const std::string &name() const { return name_; }

    /**
     * Allocate an entry for `block`. Throws SimError (tagged with
     * `now`) when the file is full or the block is already in flight.
     * @return Reference valid until release(block).
     */
    MshrEntry &allocate(Addr block, bool prefetch_origin, CoreId core,
                        Cycle now = 0);

    /**
     * Remove the entry for `block` and return it (callbacks included).
     * Throws SimError when no entry for `block` exists.
     */
    MshrEntry release(Addr block, Cycle now = 0);

    void clear() { entries_.clear(); }

    /** Register occupancy/capacity probes under `prefix`. */
    void registerTelemetry(telemetry::Registry &registry,
                           const std::string &prefix) const;

    /** All in-flight entries, unordered (self-checks/diagnostics). */
    const std::unordered_map<Addr, MshrEntry> &entries() const
    {
        return entries_;
    }

  private:
    using EntryMap = std::unordered_map<Addr, MshrEntry>;

    std::size_t capacity_;
    std::string name_;
    EntryMap entries_;
    /// Extracted map nodes kept for reuse: allocate/release run once
    /// per miss, and recycling the node spares the hash map a heap
    /// round trip on every one. Bounded by capacity_.
    std::vector<EntryMap::node_type> free_nodes_;
};

} // namespace bingo

#endif // BINGO_CACHE_MSHR_HPP
