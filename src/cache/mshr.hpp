/**
 * @file
 * Miss Status Holding Registers: track outstanding misses per block and
 * merge secondary misses into the primary's entry.
 *
 * Storage is a fixed-capacity slot pool with a dense block-key array:
 * the file's capacity is a hardware parameter known at construction,
 * so entries live in a preallocated slot vector (references stay valid
 * until release, as before) and lookups scan the packed key array with
 * the SIMD equality kernel instead of hashing — at MSHR sizes (16-64)
 * the scan is a handful of vector compares and beats the hash map it
 * replaced, while allocation/release become a free-stack push/pop with
 * no allocator traffic at all. Released callback vectors park their
 * capacity in a recycle pool (see recycle()), so the steady-state miss
 * path performs zero heap operations.
 *
 * Structural violations (allocation past capacity, release of an
 * absent entry, releaseAt() of a mismatched slot) throw SimError with
 * the owning component's name and the simulated cycle, and hold in
 * release builds too. The duplicate-allocation scan runs only under
 * BINGO_CHECK: every caller probes find() immediately beforehand, and
 * checkInvariants() sweeps the file for duplicates periodically.
 */

#ifndef BINGO_CACHE_MSHR_HPP
#define BINGO_CACHE_MSHR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cache/completion.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace bingo
{

namespace telemetry
{
class Registry;
} // namespace telemetry

/**
 * A completion parked on an in-flight miss. The owning cache accounts
 * `fill - start` of demand miss latency before invoking `fn` when
 * `track` is set; carrying the accounting as plain data instead of
 * wrapping `fn` in a capturing lambda keeps the common miss path free
 * of a per-callback heap allocation (the wrapper capture outgrew
 * std::function's inline buffer).
 */
struct MshrCallback
{
    FillCallback fn;
    Cycle start = 0;
    bool track = false;  ///< Accrue demand miss latency at fill time.

    /// Untracked completion (replayed demands, tests).
    MshrCallback(FillCallback f) : fn(std::move(f)) {}
    /// Latency-tracked demand that missed at cycle `s`.
    MshrCallback(FillCallback f, Cycle s)
        : fn(std::move(f)), start(s), track(true)
    {
    }
};

/** One in-flight miss. */
struct MshrEntry
{
    Addr block = 0;
    bool prefetch_origin = false;  ///< Allocated by a prefetch request.
    bool demand_merged = false;    ///< A demand joined after allocation.
    bool store_merged = false;     ///< Fill must be installed dirty.
    CoreId core = 0;               ///< Core that allocated the entry.
    std::vector<MshrCallback> callbacks;
};

/** Fixed-capacity file of MshrEntry keyed by block address. */
class MshrFile
{
  public:
    /** Throws std::invalid_argument when `capacity` is zero. */
    explicit MshrFile(std::size_t capacity, std::string name = "mshr");

    /** Entry for `block`, or nullptr when not in flight. */
    MshrEntry *
    find(Addr block)
    {
        const std::size_t slot = simd::findEqual64(
            slot_blocks_.data(), slot_blocks_.size(), block);
        return slot == simd::kNpos ? nullptr : &slots_[slot];
    }

    /** True when no further allocation is possible. */
    bool full() const { return size_ >= capacity_; }

    /** True when no miss is in flight. */
    bool empty() const { return size_ == 0; }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    const std::string &name() const { return name_; }

    /**
     * Allocate an entry for `block`. Throws SimError (tagged with
     * `now`) when the file is full or the block is already in flight.
     * @return Reference valid until release(block).
     */
    MshrEntry &allocate(Addr block, bool prefetch_origin, CoreId core,
                        Cycle now = 0);

    /**
     * Remove the entry for `block` and return it (callbacks included).
     * Throws SimError when no entry for `block` exists.
     */
    MshrEntry release(Addr block, Cycle now = 0);

    /**
     * Slot index of a live entry returned by allocate() — stable
     * until that entry is released, so a fill callback can carry it
     * back to releaseAt() and skip the key scan.
     */
    std::size_t
    slotOf(const MshrEntry &entry) const
    {
        return static_cast<std::size_t>(&entry - slots_.data());
    }

    /**
     * release() by slot index: the scan-free path for callers that
     * kept slotOf() of the allocation. Still verifies the slot holds
     * `block` (SimError otherwise), so a stale index cannot silently
     * free someone else's miss.
     */
    MshrEntry releaseAt(std::size_t slot, Addr block, Cycle now = 0);

    /**
     * release() by slot index alone, for the fill path: the entry
     * carries its own block, so the callback needs to keep only the
     * 4-byte slot (a capture small enough for std::function's inline
     * buffer — adding the block would heap-allocate every fetch).
     * Throws SimError when the slot is out of range or free.
     */
    MshrEntry releaseSlot(std::size_t slot, Cycle now = 0);

    /**
     * Park a released entry's callback-vector capacity for reuse by a
     * later allocate(). Optional: skipping it only costs the heap
     * round trip the pool exists to avoid.
     */
    void
    recycle(MshrEntry &&entry)
    {
        if (entry.callbacks.capacity() == 0 ||
            callback_pool_.size() >= capacity_)
            return;
        entry.callbacks.clear();
        callback_pool_.push_back(std::move(entry.callbacks));
    }

    void clear();

    /** Register occupancy/capacity probes under `prefix`. */
    void registerTelemetry(telemetry::Registry &registry,
                           const std::string &prefix) const;

    /** Visit every in-flight entry, unordered (self-checks only). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slot_blocks_.size(); ++i) {
            if (slot_blocks_[i] != kFreeSlot)
                fn(slots_[i]);
        }
    }

  private:
    /// Key-array sentinel for a free slot: not block-aligned, so it
    /// can never equal a real block address.
    static constexpr Addr kFreeSlot = ~Addr{0};

    std::size_t capacity_;
    std::string name_;
    std::size_t size_ = 0;
    /// Entry slots, preallocated; slots_[i] is live iff
    /// slot_blocks_[i] != kFreeSlot.
    std::vector<MshrEntry> slots_;
    /// Dense key mirror scanned by find(); packing the 8-byte keys
    /// separately from the ~80-byte entries is what makes the SIMD
    /// scan touch one cache line per 8 ways.
    std::vector<Addr> slot_blocks_;
    /// Free slot indices (stack).
    std::vector<std::uint32_t> free_slots_;
    /// Retired callback vectors with warm capacity. Bounded by
    /// capacity_.
    std::vector<std::vector<MshrCallback>> callback_pool_;
};

} // namespace bingo

#endif // BINGO_CACHE_MSHR_HPP
