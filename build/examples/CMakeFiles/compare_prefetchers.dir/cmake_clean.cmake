file(REMOVE_RECURSE
  "CMakeFiles/compare_prefetchers.dir/compare_prefetchers.cpp.o"
  "CMakeFiles/compare_prefetchers.dir/compare_prefetchers.cpp.o.d"
  "compare_prefetchers"
  "compare_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
