# Empty dependencies file for compare_prefetchers.
# This may be replaced when dependencies are built.
