file(REMOVE_RECURSE
  "libbingo_common.a"
)
