# Empty compiler generated dependencies file for bingo_common.
# This may be replaced when dependencies are built.
