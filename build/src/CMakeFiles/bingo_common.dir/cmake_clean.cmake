file(REMOVE_RECURSE
  "CMakeFiles/bingo_common.dir/common/config.cpp.o"
  "CMakeFiles/bingo_common.dir/common/config.cpp.o.d"
  "CMakeFiles/bingo_common.dir/common/footprint.cpp.o"
  "CMakeFiles/bingo_common.dir/common/footprint.cpp.o.d"
  "CMakeFiles/bingo_common.dir/common/stats.cpp.o"
  "CMakeFiles/bingo_common.dir/common/stats.cpp.o.d"
  "libbingo_common.a"
  "libbingo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
