file(REMOVE_RECURSE
  "CMakeFiles/bingo_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/bingo_mem.dir/mem/dram.cpp.o.d"
  "libbingo_mem.a"
  "libbingo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
