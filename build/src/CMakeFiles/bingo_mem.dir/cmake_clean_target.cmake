file(REMOVE_RECURSE
  "libbingo_mem.a"
)
