# Empty compiler generated dependencies file for bingo_mem.
# This may be replaced when dependencies are built.
