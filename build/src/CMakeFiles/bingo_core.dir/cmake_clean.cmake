file(REMOVE_RECURSE
  "CMakeFiles/bingo_core.dir/core/ooo_core.cpp.o"
  "CMakeFiles/bingo_core.dir/core/ooo_core.cpp.o.d"
  "libbingo_core.a"
  "libbingo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
