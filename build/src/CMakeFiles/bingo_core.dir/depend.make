# Empty dependencies file for bingo_core.
# This may be replaced when dependencies are built.
