file(REMOVE_RECURSE
  "libbingo_core.a"
)
