# Empty dependencies file for bingo_prefetch.
# This may be replaced when dependencies are built.
