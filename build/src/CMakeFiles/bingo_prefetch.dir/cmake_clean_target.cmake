file(REMOVE_RECURSE
  "libbingo_prefetch.a"
)
