
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/ampm.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/ampm.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/ampm.cpp.o.d"
  "/root/repo/src/prefetch/bingo.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/bingo.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/bingo.cpp.o.d"
  "/root/repo/src/prefetch/bingo_multi.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/bingo_multi.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/bingo_multi.cpp.o.d"
  "/root/repo/src/prefetch/bop.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/bop.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/bop.cpp.o.d"
  "/root/repo/src/prefetch/event_study.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/event_study.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/event_study.cpp.o.d"
  "/root/repo/src/prefetch/factory.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/factory.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/factory.cpp.o.d"
  "/root/repo/src/prefetch/nextline.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/nextline.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/nextline.cpp.o.d"
  "/root/repo/src/prefetch/prefetcher.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/prefetcher.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/prefetcher.cpp.o.d"
  "/root/repo/src/prefetch/sms.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/sms.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/sms.cpp.o.d"
  "/root/repo/src/prefetch/spp.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/spp.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/spp.cpp.o.d"
  "/root/repo/src/prefetch/stride.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/stride.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/stride.cpp.o.d"
  "/root/repo/src/prefetch/vldp.cpp" "src/CMakeFiles/bingo_prefetch.dir/prefetch/vldp.cpp.o" "gcc" "src/CMakeFiles/bingo_prefetch.dir/prefetch/vldp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bingo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
