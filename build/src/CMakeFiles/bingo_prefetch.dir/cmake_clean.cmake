file(REMOVE_RECURSE
  "CMakeFiles/bingo_prefetch.dir/prefetch/ampm.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/ampm.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/bingo.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/bingo.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/bingo_multi.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/bingo_multi.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/bop.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/bop.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/event_study.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/event_study.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/factory.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/factory.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/nextline.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/nextline.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/prefetcher.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/prefetcher.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/sms.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/sms.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/spp.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/spp.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/stride.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/stride.cpp.o.d"
  "CMakeFiles/bingo_prefetch.dir/prefetch/vldp.cpp.o"
  "CMakeFiles/bingo_prefetch.dir/prefetch/vldp.cpp.o.d"
  "libbingo_prefetch.a"
  "libbingo_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
