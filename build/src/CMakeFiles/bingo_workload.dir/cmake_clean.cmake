file(REMOVE_RECURSE
  "CMakeFiles/bingo_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/bingo_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/bingo_workload.dir/workload/mixes.cpp.o"
  "CMakeFiles/bingo_workload.dir/workload/mixes.cpp.o.d"
  "CMakeFiles/bingo_workload.dir/workload/patterns.cpp.o"
  "CMakeFiles/bingo_workload.dir/workload/patterns.cpp.o.d"
  "CMakeFiles/bingo_workload.dir/workload/server_apps.cpp.o"
  "CMakeFiles/bingo_workload.dir/workload/server_apps.cpp.o.d"
  "CMakeFiles/bingo_workload.dir/workload/spec_kernels.cpp.o"
  "CMakeFiles/bingo_workload.dir/workload/spec_kernels.cpp.o.d"
  "CMakeFiles/bingo_workload.dir/workload/trace_file.cpp.o"
  "CMakeFiles/bingo_workload.dir/workload/trace_file.cpp.o.d"
  "libbingo_workload.a"
  "libbingo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
