file(REMOVE_RECURSE
  "libbingo_workload.a"
)
