# Empty compiler generated dependencies file for bingo_workload.
# This may be replaced when dependencies are built.
