
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/bingo_workload.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/bingo_workload.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/mixes.cpp" "src/CMakeFiles/bingo_workload.dir/workload/mixes.cpp.o" "gcc" "src/CMakeFiles/bingo_workload.dir/workload/mixes.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/CMakeFiles/bingo_workload.dir/workload/patterns.cpp.o" "gcc" "src/CMakeFiles/bingo_workload.dir/workload/patterns.cpp.o.d"
  "/root/repo/src/workload/server_apps.cpp" "src/CMakeFiles/bingo_workload.dir/workload/server_apps.cpp.o" "gcc" "src/CMakeFiles/bingo_workload.dir/workload/server_apps.cpp.o.d"
  "/root/repo/src/workload/spec_kernels.cpp" "src/CMakeFiles/bingo_workload.dir/workload/spec_kernels.cpp.o" "gcc" "src/CMakeFiles/bingo_workload.dir/workload/spec_kernels.cpp.o.d"
  "/root/repo/src/workload/trace_file.cpp" "src/CMakeFiles/bingo_workload.dir/workload/trace_file.cpp.o" "gcc" "src/CMakeFiles/bingo_workload.dir/workload/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bingo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
