# Empty compiler generated dependencies file for bingo_cache.
# This may be replaced when dependencies are built.
