file(REMOVE_RECURSE
  "CMakeFiles/bingo_cache.dir/cache/cache.cpp.o"
  "CMakeFiles/bingo_cache.dir/cache/cache.cpp.o.d"
  "CMakeFiles/bingo_cache.dir/cache/mshr.cpp.o"
  "CMakeFiles/bingo_cache.dir/cache/mshr.cpp.o.d"
  "libbingo_cache.a"
  "libbingo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
