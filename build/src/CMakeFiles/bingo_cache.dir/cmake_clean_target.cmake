file(REMOVE_RECURSE
  "libbingo_cache.a"
)
