# Empty compiler generated dependencies file for bingo_sim.
# This may be replaced when dependencies are built.
