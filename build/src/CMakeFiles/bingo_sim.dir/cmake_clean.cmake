file(REMOVE_RECURSE
  "CMakeFiles/bingo_sim.dir/sim/area_model.cpp.o"
  "CMakeFiles/bingo_sim.dir/sim/area_model.cpp.o.d"
  "CMakeFiles/bingo_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/bingo_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/bingo_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/bingo_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/bingo_sim.dir/sim/report.cpp.o"
  "CMakeFiles/bingo_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/bingo_sim.dir/sim/system.cpp.o"
  "CMakeFiles/bingo_sim.dir/sim/system.cpp.o.d"
  "libbingo_sim.a"
  "libbingo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bingo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
