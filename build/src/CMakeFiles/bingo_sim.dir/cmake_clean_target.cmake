file(REMOVE_RECURSE
  "libbingo_sim.a"
)
