# Empty dependencies file for bingo_sim.
# This may be replaced when dependencies are built.
