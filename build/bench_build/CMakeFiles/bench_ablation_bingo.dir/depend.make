# Empty dependencies file for bench_ablation_bingo.
# This may be replaced when dependencies are built.
