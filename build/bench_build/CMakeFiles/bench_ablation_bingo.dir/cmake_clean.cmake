file(REMOVE_RECURSE
  "../bench/bench_ablation_bingo"
  "../bench/bench_ablation_bingo.pdb"
  "CMakeFiles/bench_ablation_bingo.dir/bench_ablation_bingo.cpp.o"
  "CMakeFiles/bench_ablation_bingo.dir/bench_ablation_bingo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bingo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
