file(REMOVE_RECURSE
  "../bench/bench_fig6_storage"
  "../bench/bench_fig6_storage.pdb"
  "CMakeFiles/bench_fig6_storage.dir/bench_fig6_storage.cpp.o"
  "CMakeFiles/bench_fig6_storage.dir/bench_fig6_storage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
