file(REMOVE_RECURSE
  "../bench/bench_table2_mpki"
  "../bench/bench_table2_mpki.pdb"
  "CMakeFiles/bench_table2_mpki.dir/bench_table2_mpki.cpp.o"
  "CMakeFiles/bench_table2_mpki.dir/bench_table2_mpki.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
