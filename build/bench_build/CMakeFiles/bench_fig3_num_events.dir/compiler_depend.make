# Empty compiler generated dependencies file for bench_fig3_num_events.
# This may be replaced when dependencies are built.
