file(REMOVE_RECURSE
  "../bench/bench_fig4_redundancy"
  "../bench/bench_fig4_redundancy.pdb"
  "CMakeFiles/bench_fig4_redundancy.dir/bench_fig4_redundancy.cpp.o"
  "CMakeFiles/bench_fig4_redundancy.dir/bench_fig4_redundancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
