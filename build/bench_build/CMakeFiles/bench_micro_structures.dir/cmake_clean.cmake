file(REMOVE_RECURSE
  "../bench/bench_micro_structures"
  "../bench/bench_micro_structures.pdb"
  "CMakeFiles/bench_micro_structures.dir/bench_micro_structures.cpp.o"
  "CMakeFiles/bench_micro_structures.dir/bench_micro_structures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
