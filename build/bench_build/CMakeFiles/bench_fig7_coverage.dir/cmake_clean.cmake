file(REMOVE_RECURSE
  "../bench/bench_fig7_coverage"
  "../bench/bench_fig7_coverage.pdb"
  "CMakeFiles/bench_fig7_coverage.dir/bench_fig7_coverage.cpp.o"
  "CMakeFiles/bench_fig7_coverage.dir/bench_fig7_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
