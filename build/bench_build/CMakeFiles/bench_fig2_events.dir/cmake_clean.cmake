file(REMOVE_RECURSE
  "../bench/bench_fig2_events"
  "../bench/bench_fig2_events.pdb"
  "CMakeFiles/bench_fig2_events.dir/bench_fig2_events.cpp.o"
  "CMakeFiles/bench_fig2_events.dir/bench_fig2_events.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
