file(REMOVE_RECURSE
  "../bench/bench_fig10_isodegree"
  "../bench/bench_fig10_isodegree.pdb"
  "CMakeFiles/bench_fig10_isodegree.dir/bench_fig10_isodegree.cpp.o"
  "CMakeFiles/bench_fig10_isodegree.dir/bench_fig10_isodegree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_isodegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
