# Empty dependencies file for bench_fig10_isodegree.
# This may be replaced when dependencies are built.
