file(REMOVE_RECURSE
  "../bench/bench_fig9_density"
  "../bench/bench_fig9_density.pdb"
  "CMakeFiles/bench_fig9_density.dir/bench_fig9_density.cpp.o"
  "CMakeFiles/bench_fig9_density.dir/bench_fig9_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
