# Empty dependencies file for bench_fig9_density.
# This may be replaced when dependencies are built.
