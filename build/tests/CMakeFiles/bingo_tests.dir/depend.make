# Empty dependencies file for bingo_tests.
# This may be replaced when dependencies are built.
