
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ampm.cpp" "tests/CMakeFiles/bingo_tests.dir/test_ampm.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_ampm.cpp.o.d"
  "/root/repo/tests/test_bingo.cpp" "tests/CMakeFiles/bingo_tests.dir/test_bingo.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_bingo.cpp.o.d"
  "/root/repo/tests/test_bingo_multi.cpp" "tests/CMakeFiles/bingo_tests.dir/test_bingo_multi.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_bingo_multi.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/bingo_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/bingo_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_delta_prefetchers.cpp" "tests/CMakeFiles/bingo_tests.dir/test_delta_prefetchers.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_delta_prefetchers.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/bingo_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/bingo_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_event_study.cpp" "tests/CMakeFiles/bingo_tests.dir/test_event_study.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_event_study.cpp.o.d"
  "/root/repo/tests/test_footprint.cpp" "tests/CMakeFiles/bingo_tests.dir/test_footprint.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_footprint.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/bingo_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/bingo_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mshr.cpp" "tests/CMakeFiles/bingo_tests.dir/test_mshr.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_mshr.cpp.o.d"
  "/root/repo/tests/test_ooo_core.cpp" "tests/CMakeFiles/bingo_tests.dir/test_ooo_core.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_ooo_core.cpp.o.d"
  "/root/repo/tests/test_prefetch_invariants.cpp" "tests/CMakeFiles/bingo_tests.dir/test_prefetch_invariants.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_prefetch_invariants.cpp.o.d"
  "/root/repo/tests/test_region_tracker.cpp" "tests/CMakeFiles/bingo_tests.dir/test_region_tracker.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_region_tracker.cpp.o.d"
  "/root/repo/tests/test_replacement.cpp" "tests/CMakeFiles/bingo_tests.dir/test_replacement.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_replacement.cpp.o.d"
  "/root/repo/tests/test_sms.cpp" "tests/CMakeFiles/bingo_tests.dir/test_sms.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_sms.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/bingo_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/bingo_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_trace_file.cpp" "tests/CMakeFiles/bingo_tests.dir/test_trace_file.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_trace_file.cpp.o.d"
  "/root/repo/tests/test_translation.cpp" "tests/CMakeFiles/bingo_tests.dir/test_translation.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_translation.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/bingo_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/bingo_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bingo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bingo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
